// E7 — §6: far-memory transfers for the monitoring case study.
// Naive sample shipping costs (k+1)·N transfers; the histogram design costs
// N producer accesses plus m << N notification-driven consumer accesses.
// Sweep the number of consumers k and the alarm-range sample fraction.
#include "bench/bench_util.h"
#include "src/apps/monitoring/monitoring.h"
#include "src/common/rng.h"

namespace fmds {
namespace {

constexpr int kSamples = 2000;

MonitorConfig Config() {
  MonitorConfig config;
  config.num_bins = 64;
  config.min_value = 0.0;
  config.max_value = 100.0;
  config.num_windows = 2;
  config.warn_bin = 48;
  config.critical_bin = 56;
  config.failure_bin = 62;
  config.alarm_duration = 3;
  return config;
}

double SampleValue(Rng& rng, double alarm_fraction) {
  return rng.NextBool(alarm_fraction) ? 80.0 + rng.NextDouble() * 19.0
                                      : rng.NextDouble() * 70.0;
}

}  // namespace
}  // namespace fmds

int main() {
  using namespace fmds;
  Table table({"consumers", "alarm_frac", "naive transfers",
               "smart transfers", "notifications", "reduction"});
  // Per-structure (op-label) breakdown tables are captured for one
  // representative configuration.
  const ObsOptions obs = ObsOptions::HistogramsOnly();
  for (int consumers : {1, 2, 4, 8}) {
    for (double alarm_fraction : {0.0, 0.01, 0.10}) {
      const bool observe = consumers == 4 && alarm_fraction == 0.10;
      // ---- naive ----
      uint64_t naive = 0;
      {
        BenchEnv env(DefaultFabric());
        auto& producer_client =
            observe ? env.NewClient(obs) : env.NewClient();
        auto log = CheckOk(
            NaiveMonitor::Create(&producer_client, &env.alloc(), kSamples),
            "naive");
        Rng rng(91);
        for (int i = 0; i < kSamples; ++i) {
          CheckOk(log.Record(&producer_client,
                             SampleValue(rng, alarm_fraction)),
                  "record");
        }
        naive += producer_client.stats().far_ops;
        for (int c = 0; c < consumers; ++c) {
          auto& consumer_client =
              observe ? env.NewClient(obs) : env.NewClient();
          uint64_t cursor = 0;
          CheckOk(log.PollSamples(&consumer_client, &cursor, nullptr)
                      .status(),
                  "poll");
          naive += consumer_client.stats().far_ops;
        }
        if (observe) {
          env.CollectMetrics().PrintLabelTable(
              std::cout,
              "E7 obs: naive per-structure breakdown (consumers=4, "
              "alarm_frac=0.10)");
        }
      }
      // ---- histogram + notifications ----
      uint64_t smart = 0;
      uint64_t notifications = 0;
      {
        BenchEnv env(DefaultFabric());
        auto& producer_client =
            observe ? env.NewClient(obs) : env.NewClient();
        auto store = CheckOk(
            MonitorStore::Create(&producer_client, &env.alloc(), Config()),
            "store");
        MetricProducer producer(&store, &producer_client);
        std::vector<FarClient*> clients;
        std::vector<std::unique_ptr<MetricConsumer>> consumer_objs;
        std::vector<uint64_t> setup_ops;
        for (int c = 0; c < consumers; ++c) {
          clients.push_back(observe ? &env.NewClient(obs) : &env.NewClient());
          consumer_objs.push_back(std::make_unique<MetricConsumer>(
              &store, clients.back(), AlarmSeverity::kWarning));
          CheckOk(consumer_objs.back()->Subscribe(), "subscribe");
          setup_ops.push_back(clients.back()->stats().far_ops);
        }
        const uint64_t producer_setup = producer_client.stats().far_ops;
        Rng rng(91);
        for (int i = 0; i < kSamples; ++i) {
          CheckOk(producer.Record(SampleValue(rng, alarm_fraction)),
                  "record");
        }
        smart += producer_client.stats().far_ops - producer_setup;
        for (int c = 0; c < consumers; ++c) {
          CheckOk(consumer_objs[c]->Poll().status(), "poll");
          smart += clients[c]->stats().far_ops - setup_ops[c];
          notifications += clients[c]->stats().notifications;
        }
        if (observe) {
          env.CollectMetrics().PrintLabelTable(
              std::cout,
              "E7 obs: histogram+notify per-structure breakdown "
              "(consumers=4, alarm_frac=0.10)");
        }
      }
      table.AddRow({Table::Cell(static_cast<int64_t>(consumers)),
                    Table::Cell(alarm_fraction, 2), Table::Cell(naive),
                    Table::Cell(smart), Table::Cell(notifications),
                    Table::Cell(static_cast<double>(naive) /
                                    static_cast<double>(std::max<uint64_t>(
                                        smart + notifications, 1)),
                                1)});
    }
  }
  table.Print(std::cout,
              "E7: §6 monitoring — naive (k+1)N sample shipping vs "
              "histogram+notifications (N producer ops + m<N events)");
  return 0;
}
