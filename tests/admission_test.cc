// Tests for the client-side admission controller (DESIGN.md §14): token
// conservation, AIMD rate adaptation from tail reports, and a TSan-stressed
// multi-threaded arm (this test is in scripts/check.sh's sanitizer set).
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/fabric/admission.h"

namespace fmds {
namespace {

AdmissionOptions SmallBucket(double rate = 1e6, double burst = 4.0) {
  AdmissionOptions options;
  options.initial_rate_ops_per_sec = rate;
  options.burst_ops = burst;
  return options;
}

TEST(Admission, BurstThenRefillConservesTokens) {
  // rate = 1e6 ops/s = 1 op per 1000 ns; burst = 4 tokens.
  AdmissionController controller(SmallBucket(1e6, 4.0));
  // The full burst rides through at t=0...
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(controller.Admit(0, 0)) << "burst op " << i;
  }
  // ...then the bucket is dry until simulated time refills it.
  EXPECT_FALSE(controller.Admit(0, 0));
  EXPECT_FALSE(controller.Admit(0, 500));   // half a token: still dry
  EXPECT_TRUE(controller.Admit(0, 1'500));  // 1.5 tokens accumulated
  EXPECT_FALSE(controller.Admit(0, 1'600)); // 0.6 left: dry again
  EXPECT_EQ(controller.admitted(), 5u);
  EXPECT_EQ(controller.deferred(), 3u);
}

TEST(Admission, RefillCapsAtBurst) {
  AdmissionController controller(SmallBucket(1e6, 4.0));
  // A long idle period must not bank unbounded tokens.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(controller.Admit(0, 1'000'000'000));
  }
  EXPECT_FALSE(controller.Admit(0, 1'000'000'000));
}

TEST(Admission, AimdCutsOnTailAndProbesBack) {
  AdmissionOptions options = SmallBucket(1e6, 4.0);
  options.p99_bound_ns = 10'000;
  options.decrease_factor = 0.5;
  options.increase_ops_per_sec = 1e5;
  options.min_rate_ops_per_sec = 1e5;
  AdmissionController controller(options);
  ASSERT_TRUE(controller.Admit(0, 0));  // materialize the bucket

  controller.ReportP99(0, 50'000);  // tail blown: multiplicative cut
  EXPECT_DOUBLE_EQ(controller.RateFor(0), 5e5);
  controller.ReportP99(0, 50'000);
  EXPECT_DOUBLE_EQ(controller.RateFor(0), 2.5e5);
  // Repeated cuts floor at min_rate, never to zero.
  for (int i = 0; i < 20; ++i) {
    controller.ReportP99(0, 50'000);
  }
  EXPECT_DOUBLE_EQ(controller.RateFor(0), 1e5);
  // In-bound tails probe the rate back up additively.
  controller.ReportP99(0, 2'000);
  EXPECT_DOUBLE_EQ(controller.RateFor(0), 2e5);
}

TEST(Admission, NodesAreIndependent) {
  AdmissionController controller(SmallBucket(1e6, 2.0));
  ASSERT_TRUE(controller.Admit(0, 0));
  ASSERT_TRUE(controller.Admit(1, 0));
  controller.ReportP99(0, 1'000'000);  // node 0 congested
  EXPECT_LT(controller.RateFor(0), controller.options().initial_rate_ops_per_sec);
  EXPECT_DOUBLE_EQ(controller.RateFor(1),
                   controller.options().initial_rate_ops_per_sec);
  // Unknown nodes report the configured initial rate.
  EXPECT_DOUBLE_EQ(controller.RateFor(7),
                   controller.options().initial_rate_ops_per_sec);
}

TEST(Admission, ThreadedAdmitIsRaceFreeAndConserving) {
  // The TSan arm: many threads share one controller (the scenario-suite
  // configuration), hammering Admit while others feed ReportP99. Beyond
  // data-race freedom, token conservation must hold: admissions over the
  // run cannot exceed burst + rate * elapsed (with the rate never above
  // max over any interval).
  AdmissionOptions options = SmallBucket(/*rate=*/1e6, /*burst=*/32.0);
  options.max_rate_ops_per_sec = 2e6;
  AdmissionController controller(options);

  constexpr int kThreads = 8;
  constexpr uint64_t kOpsPerThread = 20'000;
  constexpr uint64_t kStepNs = 100;  // per-op clock step within a thread
  std::atomic<uint64_t> admitted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        const uint64_t now = i * kStepNs;
        if (controller.Admit(/*node=*/t % 2, now)) {
          admitted.fetch_add(1, std::memory_order_relaxed);
        }
        if (i % 1'000 == 0) {
          // Alternate healthy / blown tails: exercises both AIMD branches
          // concurrently with admission.
          controller.ReportP99(t % 2, (i / 1'000) % 2 == 0 ? 1'000 : 100'000);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(admitted.load(),
            controller.admitted());
  EXPECT_EQ(controller.admitted() + controller.deferred(),
            kThreads * kOpsPerThread);
  // Conservation per node: elapsed simulated time is (kOpsPerThread-1) *
  // kStepNs; at most burst + elapsed * max_rate tokens ever existed.
  const double elapsed_s = (kOpsPerThread - 1) * kStepNs * 1e-9;
  const double ceiling =
      2 * (options.burst_ops + elapsed_s * options.max_rate_ops_per_sec);
  EXPECT_LE(static_cast<double>(controller.admitted()), ceiling + 1.0);
}

}  // namespace
}  // namespace fmds
