// Windowed-telemetry primitive tests (src/obs/windowed.*): LogHistogram
// window-rotation support (Clear / MergeFrom and the dirty-range reuse they
// rely on), WindowedHistogram epoch rotation and expiry, WindowedRate,
// irregular-interval Ewma, and the WindowedSignals run-collapse write path —
// counts must stay EXACT through every staging shape (repeats, 2-way
// alternation, third-key eviction, staging overflow, epoch crossings) —
// plus the OpRecorder pause/park semantics the E15 bench toggles through.
#include <cstdint>

#include <gtest/gtest.h>

#include "src/common/histogram.h"
#include "src/obs/recorder.h"
#include "src/obs/windowed.h"

namespace fmds {
namespace {

// Small, power-of-two-friendly geometry: slot span bit_ceil(1024) = 1024 ns,
// 8 slots, effective window 8192 ns.
WindowedOptions TinyWindow() {
  WindowedOptions o;
  o.window_ns = 8 * 1024;
  o.slots = 8;
  o.sub_bits = 3;
  o.ewma_tau_ns = 1024;
  return o;
}

// ------------------- LogHistogram window-rotation support -------------------

TEST(LogHistogramWindowTest, ClearThenRecord) {
  LogHistogram h(3);
  h.Record(100);
  h.Record(100000);
  ASSERT_EQ(h.count(), 2u);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0u);
  // The cleared instance records correctly again (dirty-span reset must not
  // leave stale buckets behind).
  h.Record(500);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 500u);
  EXPECT_EQ(h.max(), 500u);
  EXPECT_EQ(h.Percentile(0.5), 500u);
}

TEST(LogHistogramWindowTest, MergeFromIntoEmpty) {
  LogHistogram src(3);
  for (uint64_t v : {10u, 20u, 20u, 4000u}) {
    src.Record(v);
  }
  LogHistogram dst(3);
  ASSERT_TRUE(dst.MergeFrom(src));
  EXPECT_EQ(dst.count(), src.count());
  EXPECT_EQ(dst.sum(), src.sum());
  EXPECT_EQ(dst.min(), src.min());
  EXPECT_EQ(dst.max(), src.max());
  EXPECT_EQ(dst.Percentile(0.5), src.Percentile(0.5));
}

TEST(LogHistogramWindowTest, MergeFromEmptySourceIsNoOp) {
  LogHistogram dst(3);
  dst.Record(77);
  LogHistogram empty(3);
  ASSERT_TRUE(dst.MergeFrom(empty));
  EXPECT_EQ(dst.count(), 1u);
  EXPECT_EQ(dst.min(), 77u);
  EXPECT_EQ(dst.max(), 77u);
}

TEST(LogHistogramWindowTest, MergeFromCrossSubBitsRejected) {
  LogHistogram coarse(3);
  LogHistogram fine(5);
  fine.Record(123);
  ASSERT_FALSE(coarse.MergeFrom(fine));
  // Target untouched by the rejected merge.
  EXPECT_EQ(coarse.count(), 0u);
  EXPECT_EQ(coarse.Percentile(0.99), 0u);
  // Merge() still accepts cross-resolution sources (degrades to bucket
  // lower bounds) — only the in-place window path rejects.
  coarse.Merge(fine);
  EXPECT_EQ(coarse.count(), 1u);
}

TEST(LogHistogramWindowTest, ClearedSourceMergesAsEmpty) {
  LogHistogram src(3);
  src.Record(1000);
  src.Clear();
  LogHistogram dst(3);
  dst.Record(5);
  ASSERT_TRUE(dst.MergeFrom(src));
  EXPECT_EQ(dst.count(), 1u);
  EXPECT_EQ(dst.max(), 5u);
}

TEST(LogHistogramWindowTest, RepeatedClearRecordCycles) {
  // The window ring clears and refills the same instance every rotation;
  // statistics must be identical cycle after cycle.
  LogHistogram h(3);
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (uint64_t v = 1; v <= 100; ++v) {
      h.Record(v * 7);
    }
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.min(), 7u);
    EXPECT_EQ(h.max(), 700u);
    h.Clear();
  }
  EXPECT_EQ(h.count(), 0u);
}

// --------------------------- WindowedHistogram ---------------------------

TEST(WindowedHistogramTest, SlotSpanIsPowerOfTwoCoveringWindow) {
  WindowedHistogram w(5'000'000, 8, 3);
  const uint64_t span = w.slot_ns();
  EXPECT_EQ(span & (span - 1), 0u) << "slot span must be a power of two";
  EXPECT_GE(span * 8, 5'000'000u);
  EXPECT_EQ(w.window_ns(), span * 8);
  EXPECT_EQ(uint64_t{1} << w.slot_shift(), span);
}

TEST(WindowedHistogramTest, RecentExcludesExpiredSubWindows) {
  WindowedHistogram w(8 * 1024, 8, 3);
  const uint64_t slot = w.slot_ns();
  w.Record(0, 100);
  w.Record(slot, 200);
  EXPECT_EQ(w.RecentCount(slot), 2u);
  // Advance so the epoch-0 sub-window falls out of [now - W, now]: at
  // now = 8 * slot the live epochs are 1..8.
  EXPECT_EQ(w.RecentCount(8 * slot), 1u);
  EXPECT_EQ(w.MergedRecent(8 * slot).max(), 200u);
  // Far future: everything expired.
  EXPECT_EQ(w.RecentCount(100 * slot), 0u);
  EXPECT_EQ(w.RecentPercentile(100 * slot, 0.99), 0u);
}

TEST(WindowedHistogramTest, RingSlotReuseReplacesOldEpoch) {
  WindowedHistogram w(8 * 1024, 8, 3);
  const uint64_t slot = w.slot_ns();
  w.Record(0, 111);  // epoch 0
  // Epoch 8 maps to the same ring slot as epoch 0; the lazy clear must
  // drop the old contents, not merge into them.
  w.Record(8 * slot, 222);
  const LogHistogram merged = w.MergedRecent(8 * slot);
  EXPECT_EQ(merged.count(), 1u);
  EXPECT_EQ(merged.min(), 222u);
}

// ------------------------------ WindowedRate ------------------------------

TEST(WindowedRateTest, CountsAndExpires) {
  WindowedRate rate(8 * 1024, 8);
  const uint64_t slot = uint64_t{1} << rate.slot_shift();
  rate.Add(0, 5);
  rate.Add(slot, 7);
  EXPECT_EQ(rate.RecentCount(slot), 12u);
  EXPECT_EQ(rate.RecentCount(8 * slot), 7u);
  EXPECT_EQ(rate.RecentCount(100 * slot), 0u);
  const double span_sec = static_cast<double>(rate.window_ns()) * 1e-9;
  EXPECT_DOUBLE_EQ(rate.RecentRatePerSec(slot), 12.0 / span_sec);
}

// ---------------------------------- Ewma ----------------------------------

TEST(EwmaTest, FirstSampleInitializesThenDecays) {
  Ewma e(1000);
  e.Update(0, 100.0);
  EXPECT_DOUBLE_EQ(e.value(), 100.0);
  // dt = 10 tau: alpha ~ 1, value lands (almost) on the sample.
  e.Update(10'000, 200.0);
  EXPECT_GT(e.value(), 195.0);
  EXPECT_LE(e.value(), 200.0);
  // dt = 0 uses the small floor instead of ignoring the sample.
  const double before = e.value();
  e.Update(10'000, 1000.0);
  EXPECT_GT(e.value(), before);
  EXPECT_EQ(e.count(), 3u);
}

TEST(EwmaTest, UpdateManyCountsBatch) {
  Ewma e(1000);
  e.UpdateMany(0, 50.0, 10);
  EXPECT_EQ(e.count(), 10u);
  EXPECT_DOUBLE_EQ(e.value(), 50.0);
  e.UpdateMany(500, 60.0, 0);  // n = 0 is a no-op
  EXPECT_EQ(e.count(), 10u);
  EXPECT_DOUBLE_EQ(e.value(), 50.0);
}

// ------------------------- WindowedSignals write path -------------------------
// The hot path collapses records into (latency, kind) runs held in two
// pending slots before anything reaches the staging array; every shape of
// that machinery must preserve exact counts.

TEST(WindowedSignalsTest, RepeatRunCountsExact) {
  WindowedSignals s(TinyWindow());
  for (int i = 0; i < 1000; ++i) {
    s.RecordOp(FarOpKind::kRead, 0, 64, 100, 900);
  }
  s.Drain();
  EXPECT_EQ(s.RecentCount(FarOpKind::kRead), 1000u);
  EXPECT_EQ(s.RecentCountAll(), 1000u);
  EXPECT_EQ(s.RecentPercentile(FarOpKind::kRead, 1.0), 900u);
}

TEST(WindowedSignalsTest, TwoWayAlternationCountsExact) {
  // A-B-A-B latencies: the two pending slots must absorb the alternation
  // (this is the dominant real traffic shape — alternating bucket-read /
  // value-read latencies).
  WindowedSignals s(TinyWindow());
  for (int i = 0; i < 501; ++i) {  // odd total: ends mid-alternation
    s.RecordOp(FarOpKind::kRead, 0, 64, 50, i % 2 == 0 ? 700 : 1300);
  }
  s.Drain();
  EXPECT_EQ(s.RecentCount(FarOpKind::kRead), 501u);
  EXPECT_EQ(s.RecentPercentile(FarOpKind::kRead, 0.0), 700u);
  EXPECT_EQ(s.RecentPercentile(FarOpKind::kRead, 1.0), 1300u);
}

TEST(WindowedSignalsTest, SameLatencyDifferentKindSplitsRuns) {
  WindowedSignals s(TinyWindow());
  for (int i = 0; i < 10; ++i) {
    s.RecordOp(FarOpKind::kRead, 0, 64, 10, 500);
    s.RecordOp(FarOpKind::kWrite, 0, 64, 10, 500);
  }
  s.Drain();
  EXPECT_EQ(s.RecentCount(FarOpKind::kRead), 10u);
  EXPECT_EQ(s.RecentCount(FarOpKind::kWrite), 10u);
}

TEST(WindowedSignalsTest, ThirdKeyEvictsToStaging) {
  // Three interleaved latencies exceed the two pending slots, forcing the
  // BreakRun eviction path on every third record.
  WindowedSignals s(TinyWindow());
  const uint64_t lats[3] = {400, 800, 1600};
  for (int i = 0; i < 300; ++i) {
    s.RecordOp(FarOpKind::kRead, 0, 64, 20, lats[i % 3]);
  }
  s.Drain();
  EXPECT_EQ(s.RecentCount(FarOpKind::kRead), 300u);
  EXPECT_EQ(s.RecentPercentile(FarOpKind::kRead, 0.0), 400u);
  EXPECT_EQ(s.RecentPercentile(FarOpKind::kRead, 1.0), 1600u);
}

TEST(WindowedSignalsTest, StagingOverflowDrainsMidEpoch) {
  // More distinct runs than staging slots within one sub-window: BreakRun
  // must drain in place and keep counting exactly.
  WindowedOptions o = TinyWindow();
  o.staging = 4;
  WindowedSignals s(o);
  for (uint64_t i = 0; i < 100; ++i) {
    s.RecordOp(FarOpKind::kRead, 0, 64, 30, 100 + i * 8);
  }
  s.Drain();
  EXPECT_EQ(s.RecentCount(FarOpKind::kRead), 100u);
}

TEST(WindowedSignalsTest, EpochCrossingsPreserveCountsAndExpire) {
  WindowedSignals s(TinyWindow());
  const uint64_t slot = uint64_t{1} << 10;  // bit_ceil(8192 / 8)
  // One op per sub-window for two full windows of simulated time.
  for (uint64_t e = 0; e < 16; ++e) {
    s.RecordOp(FarOpKind::kRead, 0, 64, e * slot + 1, 600);
  }
  s.Drain();
  // At now = 15 * slot + 1 the live epochs are 8..15: exactly 8 survive.
  EXPECT_EQ(s.RecentCount(FarOpKind::kRead), 8u);
}

TEST(WindowedSignalsTest, LatencyClampsTo32Bits) {
  WindowedSignals s(TinyWindow());
  s.RecordOp(FarOpKind::kRead, 0, 64, 40, uint64_t{1} << 40);
  s.Drain();
  EXPECT_EQ(s.RecentCount(FarOpKind::kRead), 1u);
  EXPECT_EQ(s.RecentPercentile(FarOpKind::kRead, 1.0), uint64_t{UINT32_MAX});
}

TEST(WindowedSignalsTest, PerNodeAttribution) {
  WindowedSignals s(TinyWindow());
  for (int i = 0; i < 30; ++i) {
    s.RecordOp(FarOpKind::kRead, 0, 100, 50, 500);
  }
  for (int i = 0; i < 10; ++i) {
    s.RecordOp(FarOpKind::kRead, 2, 300, 50, 2000);
  }
  s.Drain();
  ASSERT_GE(s.node_count(), 3u);
  EXPECT_DOUBLE_EQ(s.RecentOpsPerSec(0) / s.RecentOpsPerSec(2), 3.0);
  // bytes: node0 30*100, node2 10*300 — equal rolling byte rates.
  EXPECT_DOUBLE_EQ(s.RecentBytesPerSec(0), s.RecentBytesPerSec(2));
  EXPECT_GT(s.NodeLoadEwma(2), s.NodeLoadEwma(0));
  // Node 1 never saw traffic.
  EXPECT_EQ(s.RecentOpsPerSec(1), 0.0);
  EXPECT_EQ(s.NodeLoadEwma(1), 0.0);
  // Out-of-range node ids answer 0, never grow state.
  EXPECT_EQ(s.RecentOpsPerSec(57), 0.0);
}

TEST(WindowedSignalsTest, BatchKindExcludedFromAllAndNodes) {
  WindowedSignals s(TinyWindow());
  s.RecordOp(FarOpKind::kRead, 0, 64, 60, 500);
  // kBatch is a span over its member ops: tracked per kind, excluded from
  // the all-kinds roll-up and from per-node attribution.
  s.RecordOp(FarOpKind::kBatch, 0, 256, 60, 9000);
  s.Drain();
  EXPECT_EQ(s.RecentCount(FarOpKind::kBatch), 1u);
  EXPECT_EQ(s.RecentCountAll(), 1u);
  EXPECT_EQ(s.RecentPercentileAll(1.0), 500u);
  const double span_sec =
      static_cast<double>(8 * (uint64_t{1} << 10)) * 1e-9;
  EXPECT_DOUBLE_EQ(s.RecentOpsPerSec(0), 1.0 / span_sec);
}

TEST(WindowedSignalsTest, TxnOutcomeRates) {
  WindowedSignals s(TinyWindow());
  for (int i = 0; i < 6; ++i) {
    s.RecordTxn(100, /*committed=*/true, false);
  }
  s.RecordTxn(100, /*committed=*/false, /*validate_fail=*/true);
  s.RecordTxn(100, /*committed=*/false, /*validate_fail=*/false);
  EXPECT_EQ(s.RecentTxnCommits(), 6u);
  EXPECT_EQ(s.RecentTxnAborts(), 2u);
  EXPECT_DOUBLE_EQ(s.RecentTxnAbortRate(), 2.0 / 8.0);
  EXPECT_DOUBLE_EQ(s.RecentTxnValidateFailRate(), 1.0 / 8.0);
}

TEST(WindowedSignalsTest, TxnDrainsPendingOps) {
  // RecordTxn folds any staged ops first, so a read right after a txn
  // outcome sees both.
  WindowedSignals s(TinyWindow());
  s.RecordOp(FarOpKind::kRead, 0, 64, 70, 500);
  s.RecordTxn(70, true, false);
  EXPECT_EQ(s.RecentCountAll(), 1u);
}

// ----------------------- OpRecorder pause / park API -----------------------

TEST(RecorderWindowedTest, OffByDefault) {
  OpRecorder recorder(1);
  EXPECT_EQ(recorder.windowed(), nullptr);
  EXPECT_FALSE(recorder.recording());
  EXPECT_EQ(recorder.RecentP99All(), 0u);
  EXPECT_EQ(recorder.RecentOpsPerSec(0), 0.0);
}

TEST(RecorderWindowedTest, PauseDropsRecordsResumeKeepsState) {
  OpRecorder recorder(1);
  ObsOptions opts = ObsOptions::WindowedOnly();
  opts.windowed_opts = TinyWindow();
  recorder.set_options(opts);
  ASSERT_TRUE(recorder.windowed_enabled());

  recorder.RecordOp(FarOpKind::kRead, 0, 0, 64, 100, 500, true);
  recorder.windowed()->Drain();
  EXPECT_EQ(recorder.windowed()->RecentCountAll(), 1u);

  recorder.PauseWindowed();
  EXPECT_EQ(recorder.windowed(), nullptr);
  EXPECT_FALSE(recorder.recording());
  // Dropped while parked — by the recording() gate callers use, and by the
  // null windowed_ inside RecordOp itself.
  recorder.RecordOp(FarOpKind::kRead, 0, 0, 64, 200, 500, true);
  recorder.PauseWindowed();  // idempotent

  recorder.ResumeWindowed();
  ASSERT_TRUE(recorder.windowed_enabled());
  recorder.ResumeWindowed();  // idempotent
  recorder.RecordOp(FarOpKind::kRead, 0, 0, 64, 300, 500, true);
  recorder.windowed()->Drain();
  // The parked window state survived: 1 (before) + 1 (after), not 3.
  EXPECT_EQ(recorder.windowed()->RecentCountAll(), 2u);
}

TEST(RecorderWindowedTest, SetOptionsDropsParkedInstance) {
  OpRecorder recorder(1);
  ObsOptions opts = ObsOptions::WindowedOnly();
  opts.windowed_opts = TinyWindow();
  recorder.set_options(opts);
  recorder.RecordOp(FarOpKind::kRead, 0, 0, 64, 100, 500, true);
  recorder.PauseWindowed();
  recorder.set_options(opts);  // rebuilds windowed_, discards parked
  ASSERT_TRUE(recorder.windowed_enabled());
  recorder.windowed()->Drain();
  EXPECT_EQ(recorder.windowed()->RecentCountAll(), 0u);
  // Resume after the rebuild must not revive the stale instance.
  recorder.ResumeWindowed();
  recorder.windowed()->Drain();
  EXPECT_EQ(recorder.windowed()->RecentCountAll(), 0u);
}

}  // namespace
}  // namespace fmds
