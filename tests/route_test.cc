// Tests for the adaptive dataplane (DESIGN.md §13): DataplaneRouter policy
// mechanics, the RPC map agents' semantic equivalence (bucket-head CAS
// publication, cache admission, watch coherence), end-to-end convergence of
// routed HtTree/ShardedMap handles, and the batched transaction chain-walk
// doorbell bound (EXPERIMENTS.md E16 satellite).
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/hash.h"
#include "src/core/ht_tree.h"
#include "src/core/sharded_map.h"
#include "src/core/txn.h"
#include "src/obs/telemetry.h"
#include "src/route/router.h"
#include "src/route/rpc_dataplane.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

// Finds `count` keys whose bucket index collides in a single-leaf map with
// `buckets` buckets (all land in one chain). Starts scanning at `seed` so
// different tests get disjoint key sets.
std::vector<uint64_t> CollidingKeys(uint64_t buckets, uint64_t target,
                                    size_t count, uint64_t seed = 1) {
  std::vector<uint64_t> keys;
  for (uint64_t k = seed; keys.size() < count; ++k) {
    if (Mix64(k) % buckets == target) {
      keys.push_back(k);
    }
  }
  return keys;
}

HtTree::Options DeepChainOptions(uint64_t buckets = 512) {
  HtTree::Options options;
  options.buckets_per_table = buckets;
  options.max_chain = 1 << 20;  // no depth-triggered splits
  return options;
}

// ------------------------- router policy mechanics -------------------------

TEST(RouterPolicy, ColdStartAlternatesThenConverges) {
  TestEnv env(SmallFabric(1));
  auto& client = env.NewClient();
  DataplaneRouterOptions options;
  options.min_samples = 3;
  options.probe_period = 0;  // isolate the decision rule
  DataplaneRouter router(&client, options);

  // Cold start: each route must be offered until both have min_samples.
  std::vector<DataplaneRoute> first;
  for (int i = 0; i < 6; ++i) {
    const DataplaneRoute route = router.Decide(RoutedOp::kGet, 0, 1.0, 1);
    first.push_back(route);
    router.Observe(RoutedOp::kGet, 0, route,
                   route == DataplaneRoute::kOneSided ? 4000 : 1000, 1.0, 1);
  }
  int one_sided = 0;
  int rpc = 0;
  for (DataplaneRoute route : first) {
    (route == DataplaneRoute::kOneSided ? one_sided : rpc) += 1;
  }
  EXPECT_EQ(one_sided, 3);
  EXPECT_EQ(rpc, 3);

  // Warm: RPC has been consistently 4x cheaper, so it must win.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(router.Decide(RoutedOp::kGet, 0, 1.0, 1), DataplaneRoute::kRpc);
  }
  EXPECT_EQ(router.Preferred(RoutedOp::kGet, 0), DataplaneRoute::kRpc);
  EXPECT_NEAR(router.EstimateNs(RoutedOp::kGet, 0, DataplaneRoute::kRpc),
              1000.0, 1.0);
}

TEST(RouterPolicy, HysteresisDefendsIncumbent) {
  TestEnv env(SmallFabric(1));
  auto& client = env.NewClient();
  DataplaneRouterOptions options;
  options.min_samples = 1;
  options.probe_period = 0;
  options.hysteresis = 1.5;
  options.ewma_alpha = 1.0;  // estimates track the last observation exactly
  DataplaneRouter router(&client, options);

  // Seed both routes; one-sided (1000) beats RPC (1200) and becomes the
  // incumbent.
  auto seed = [&](DataplaneRoute route, uint64_t ns) {
    router.Observe(RoutedOp::kGet, 0, route, ns, 1.0, 1);
  };
  (void)router.Decide(RoutedOp::kGet, 0, 1.0, 1);
  seed(DataplaneRoute::kOneSided, 1000);
  (void)router.Decide(RoutedOp::kGet, 0, 1.0, 1);
  seed(DataplaneRoute::kRpc, 1200);
  EXPECT_EQ(router.Decide(RoutedOp::kGet, 0, 1.0, 1),
            DataplaneRoute::kOneSided);
  const uint64_t flips_before = router.flips();

  // RPC becomes modestly better (800 vs 1000): inside the 1.5x band, the
  // incumbent keeps the traffic.
  seed(DataplaneRoute::kRpc, 800);
  EXPECT_EQ(router.Decide(RoutedOp::kGet, 0, 1.0, 1),
            DataplaneRoute::kOneSided);
  EXPECT_EQ(router.flips(), flips_before);

  // RPC becomes decisively better (500 * 1.5 < 1000): flip.
  seed(DataplaneRoute::kRpc, 500);
  EXPECT_EQ(router.Decide(RoutedOp::kGet, 0, 1.0, 1), DataplaneRoute::kRpc);
  EXPECT_EQ(router.flips(), flips_before + 1);
  EXPECT_EQ(client.stats().route_flips, router.flips());
}

TEST(RouterPolicy, ComplexityUnitsScaleOneSidedCost) {
  TestEnv env(SmallFabric(1));
  auto& client = env.NewClient();
  DataplaneRouterOptions options;
  options.min_samples = 1;
  options.probe_period = 0;
  options.ewma_alpha = 1.0;
  DataplaneRouter router(&client, options);

  // One-sided costs 900 ns per round trip; RPC costs 2000 ns per key flat.
  (void)router.Decide(RoutedOp::kGet, 0, 1.0, 1);
  router.Observe(RoutedOp::kGet, 0, DataplaneRoute::kOneSided, 900, 1.0, 1);
  (void)router.Decide(RoutedOp::kGet, 0, 1.0, 1);
  router.Observe(RoutedOp::kGet, 0, DataplaneRoute::kRpc, 2000, 1.0, 1);

  // Shallow op (1 unit): 900 < 2000 -> one-sided.
  EXPECT_EQ(router.Decide(RoutedOp::kGet, 0, 1.0, 1),
            DataplaneRoute::kOneSided);
  // Deep op (8 units): 7200 vs 2000 -> the SAME estimates extrapolate to
  // RPC. This is the §3.1 crossover in one decision rule.
  EXPECT_EQ(router.Decide(RoutedOp::kGet, 0, 8.0, 1), DataplaneRoute::kRpc);
}

TEST(RouterPolicy, ProbesRideTheLosingRoute) {
  TestEnv env(SmallFabric(1));
  auto& client = env.NewClient();
  DataplaneRouterOptions options;
  options.min_samples = 1;
  options.probe_period = 4;
  options.ewma_alpha = 1.0;
  DataplaneRouter router(&client, options);

  (void)router.Decide(RoutedOp::kGet, 0, 1.0, 1);
  router.Observe(RoutedOp::kGet, 0, DataplaneRoute::kOneSided, 500, 1.0, 1);
  (void)router.Decide(RoutedOp::kGet, 0, 1.0, 1);
  router.Observe(RoutedOp::kGet, 0, DataplaneRoute::kRpc, 5000, 1.0, 1);

  const uint64_t probes_before = router.probes();
  int rpc_decisions = 0;
  for (int i = 0; i < 16; ++i) {
    if (router.Decide(RoutedOp::kGet, 0, 1.0, 1) == DataplaneRoute::kRpc) {
      ++rpc_decisions;
    }
  }
  // Every probe_period-th decision explores the loser; everything else
  // stays with the winner.
  EXPECT_EQ(router.probes() - probes_before, 4u);
  EXPECT_EQ(rpc_decisions, 4);
  EXPECT_EQ(client.stats().route_probes, router.probes());
}

TEST(RouterPolicy, ForceOverridesAndFreezesLearning) {
  TestEnv env(SmallFabric(1));
  auto& client = env.NewClient();
  DataplaneRouterOptions options;
  options.force = DataplaneRoute::kRpc;
  DataplaneRouter router(&client, options);

  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(router.Decide(RoutedOp::kPut, 0, 2.0, 1), DataplaneRoute::kRpc);
    router.Observe(RoutedOp::kPut, 0, DataplaneRoute::kRpc, 1234, 2.0, 1);
  }
  // A forced arm is a static baseline: no estimates accumulate, no probes.
  EXPECT_EQ(router.EstimateNs(RoutedOp::kPut, 0, DataplaneRoute::kRpc), 0.0);
  EXPECT_EQ(router.probes(), 0u);
  EXPECT_EQ(router.rpc_decisions(), 8u);
  EXPECT_EQ(client.stats().route_rpc, 8u);
  EXPECT_EQ(client.stats().route_one_sided, 0u);
}

TEST(RouterPolicy, GaugesExportDecisionCounters) {
  TestEnv env(SmallFabric(1));
  auto& client = env.NewClient();
  DataplaneRouter router(&client);
  TelemetryHub hub;
  GaugeGroup group(&hub);
  router.AddGauges(&group, "route");
  (void)router.Decide(RoutedOp::kGet, 0, 1.0, 1);

  bool saw_one_sided = false;
  for (const auto& sample : hub.Snapshot()) {
    if (sample.name == "route.one_sided") {
      saw_one_sided = true;
      EXPECT_EQ(sample.value, 1.0);
    }
  }
  EXPECT_TRUE(saw_one_sided);
  EXPECT_EQ(hub.gauge_count(), 4u);
}

// --------------------- RPC agent semantic equivalence ---------------------

class RpcPathTest : public ::testing::Test {
 protected:
  RpcPathTest() : env_(SmallFabric(2, 16ull << 20)) {}

  TestEnv env_;
};

TEST_F(RpcPathTest, AgentWritesPublishThroughBucketCas) {
  auto& client = env_.NewClient();
  auto map = HtTree::Create(&client, &env_.alloc(), DeepChainOptions());
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  RpcDataplane dataplane(&env_.fabric(), &env_.alloc());
  RpcMapPath path(&client, &dataplane);

  // Write through the agent; read back one-sided with an independent
  // handle. The value must be there — the agent ran the same protocol.
  auto put = path.Put(map->header(), 7, 70);
  ASSERT_TRUE(put.ok()) << put.status().ToString();
  EXPECT_NE(put->bucket, kNullFarAddr);
  EXPECT_TRUE(put->refillable);

  auto& other_client = env_.NewClient();
  auto other = HtTree::Attach(&other_client, &env_.alloc(), map->header(),
                              DeepChainOptions());
  ASSERT_TRUE(other.ok());
  auto got = other->Get(7);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, 70u);

  // Agent-side remove lands as a tombstone (not refillable) and the
  // one-sided reader sees the miss.
  auto removed = path.Remove(map->header(), 7);
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_FALSE(removed->refillable);
  EXPECT_EQ(other->Get(7).status().code(), StatusCode::kNotFound);
}

TEST_F(RpcPathTest, AgentReadsReturnValidatableViews) {
  auto& client = env_.NewClient();
  auto map = HtTree::Create(&client, &env_.alloc(), DeepChainOptions());
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->Put(11, 110).ok());
  RpcDataplane dataplane(&env_.fabric(), &env_.alloc());
  RpcMapPath path(&client, &dataplane);

  auto view = path.Get(map->header(), 11);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_TRUE(view->found);
  EXPECT_TRUE(view->cacheable);
  EXPECT_EQ(view->value, 110u);
  // The returned watch location must be the real bucket head: stable
  // across reads while nothing writes, and swung by any write to the key.
  EXPECT_NE(view->bucket, kNullFarAddr);
  EXPECT_NE(view->head_word, 0u);
  auto again = path.Get(map->header(), 11);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(view->bucket, again->bucket);
  EXPECT_EQ(view->head_word, again->head_word);
  ASSERT_TRUE(map->Put(11, 111).ok());
  auto after = path.Get(map->header(), 11);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->bucket, view->bucket);
  EXPECT_NE(after->head_word, view->head_word);
  EXPECT_EQ(after->value, 111u);

  auto miss = path.Get(map->header(), 999);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->found);

  std::vector<RemoteMapPath::ReadView> views;
  const uint64_t keys[2] = {11, 999};
  ASSERT_TRUE(path.MultiGet(map->header(), keys, &views).ok());
  ASSERT_EQ(views.size(), 2u);
  EXPECT_TRUE(views[0].found);
  EXPECT_EQ(views[0].value, 111u);
  EXPECT_FALSE(views[1].found);
  EXPECT_GT(client.stats().rpc_calls, 0u);
}

TEST_F(RpcPathTest, OccupancyInflatesAgentCalls) {
  auto& client = env_.NewClient();
  auto map = HtTree::Create(&client, &env_.alloc(), DeepChainOptions());
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->Put(3, 30).ok());
  RpcDataplane dataplane(&env_.fabric(), &env_.alloc());
  RpcMapPath path(&client, &dataplane);
  auto loc = env_.fabric().Translate(map->header());
  ASSERT_TRUE(loc.ok());

  const uint64_t t0 = client.clock().now_ns();
  ASSERT_TRUE(path.Get(map->header(), 3).ok());
  const uint64_t idle_ns = client.clock().now_ns() - t0;

  dataplane.SetLoadFactor(loc->node, 0.9);  // M/M/1: service waits 10x
  const uint64_t t1 = client.clock().now_ns();
  ASSERT_TRUE(path.Get(map->header(), 3).ok());
  const uint64_t busy_ns = client.clock().now_ns() - t1;
  EXPECT_GT(busy_ns, idle_ns * 2);
}

TEST_F(RpcPathTest, HomeNodeAgentAccessIsMemoryLocal) {
  // The agent's own far accesses are priced at memory-controller cost, not
  // fabric RTTs — the §3.1 "processor close to the memory".
  auto addr = env_.alloc().Allocate(64, AllocHint::OnNode(0));
  ASSERT_TRUE(addr.ok());
  auto& fabric_client = env_.NewClient();
  ClientOptions agent_options;
  agent_options.home_node = 0;
  FarClient agent(&env_.fabric(), 77, agent_options);

  const uint64_t f0 = fabric_client.clock().now_ns();
  ASSERT_TRUE(fabric_client.ReadWord(*addr).ok());
  const uint64_t fabric_ns = fabric_client.clock().now_ns() - f0;
  const uint64_t a0 = agent.clock().now_ns();
  ASSERT_TRUE(agent.ReadWord(*addr).ok());
  const uint64_t agent_ns = agent.clock().now_ns() - a0;
  EXPECT_LT(agent_ns * 2, fabric_ns);
}

// ------------------------- routed handle end-to-end ------------------------

TEST_F(RpcPathTest, RoutedMapConvergesToRpcOnDeepChains) {
  auto& client = env_.NewClient();
  auto map = HtTree::Create(&client, &env_.alloc(), DeepChainOptions());
  ASSERT_TRUE(map.ok());
  const auto keys = CollidingKeys(512, 9, 10);
  for (uint64_t key : keys) {
    ASSERT_TRUE(map->Put(key, key + 1).ok());
  }

  RpcDataplane dataplane(&env_.fabric(), &env_.alloc());
  RpcMapPath path(&client, &dataplane);
  DataplaneRouter router(&client);
  ASSERT_TRUE(map->EnableRouting(&router, &path).ok());
  const NodeId home = map->home_node();

  // The chain is ~10 deep; an idle agent walks it at memory-local cost, so
  // the adaptive policy must land on RPC — while every read stays correct.
  for (int round = 0; round < 30; ++round) {
    for (uint64_t key : keys) {
      auto got = map->Get(key);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, key + 1);
    }
  }
  EXPECT_EQ(router.Preferred(RoutedOp::kGet, home), DataplaneRoute::kRpc);
  EXPECT_GT(router.rpc_decisions(), router.one_sided_decisions());
  EXPECT_GT(map->lookup_units(), 2.0);  // chain depth fed back into units
}

TEST_F(RpcPathTest, RoutedMapConvergesToOneSidedUnderAgentLoad) {
  auto& client = env_.NewClient();
  auto map = HtTree::Create(&client, &env_.alloc(), DeepChainOptions());
  ASSERT_TRUE(map.ok());
  for (uint64_t key = 1; key <= 32; ++key) {  // distinct buckets: head hits
    ASSERT_TRUE(map->Put(key, key).ok());
  }

  RpcDataplane dataplane(&env_.fabric(), &env_.alloc());
  dataplane.SetLoadFactorAll(0.9);  // the colocated processor is busy
  RpcMapPath path(&client, &dataplane);
  DataplaneRouter router(&client);
  ASSERT_TRUE(map->EnableRouting(&router, &path).ok());

  for (int round = 0; round < 20; ++round) {
    for (uint64_t key = 1; key <= 32; ++key) {
      auto got = map->Get(key);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, key);
    }
  }
  EXPECT_EQ(router.Preferred(RoutedOp::kGet, map->home_node()),
            DataplaneRoute::kOneSided);
  EXPECT_GT(router.one_sided_decisions(), router.rpc_decisions());
}

TEST_F(RpcPathTest, RpcLandedWritesKeepWatchCoherence) {
  // Client A routes everything through the agent and keeps a NearCache;
  // client B is a plain one-sided handle on the same map. Mutations must
  // stay visible in BOTH directions because agent writes publish through
  // the same bucket-head CAS the watches subscribe to.
  HtTree::Options cached = DeepChainOptions();
  cached.cache.budget_bytes = 1 << 16;
  cached.cache.admit_after = 1;

  auto& a = env_.NewClient();
  auto map_a = HtTree::Create(&a, &env_.alloc(), cached);
  ASSERT_TRUE(map_a.ok());
  auto& b = env_.NewClient();
  auto map_b =
      HtTree::Attach(&b, &env_.alloc(), map_a->header(), DeepChainOptions());
  ASSERT_TRUE(map_b.ok());

  RpcDataplane dataplane(&env_.fabric(), &env_.alloc());
  RpcMapPath path(&a, &dataplane);
  DataplaneRouterOptions force_rpc;
  force_rpc.force = DataplaneRoute::kRpc;
  DataplaneRouter router(&a, force_rpc);
  ASSERT_TRUE(map_a->EnableRouting(&router, &path).ok());

  // RPC-landed put refills A's cache; A reads it near.
  ASSERT_TRUE(map_a->Put(42, 1).ok());
  auto got = map_a->Get(42);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 1u);
  const uint64_t hits0 = a.stats().cache_hits;
  ASSERT_TRUE(map_a->Get(42).ok());
  EXPECT_GT(a.stats().cache_hits, hits0);

  // B overwrites one-sided: the CAS notification must kill A's entry.
  ASSERT_TRUE(map_b->Put(42, 2).ok());
  got = map_a->Get(42);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 2u);

  // A overwrites through the agent while B (re-attached with a cache)
  // holds the key near: B's watch must fire on the agent's CAS.
  auto map_b2 = HtTree::Attach(&b, &env_.alloc(), map_a->header(), cached);
  ASSERT_TRUE(map_b2.ok());
  ASSERT_TRUE(map_b2->Get(42).ok());  // admit
  ASSERT_TRUE(map_b2->Get(42).ok());  // served near
  ASSERT_TRUE(map_a->Put(42, 3).ok());
  got = map_b2->Get(42);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 3u);
  // And the RPC-landed remove invalidates rather than refills.
  ASSERT_TRUE(map_a->Remove(42).ok());
  EXPECT_EQ(map_b2->Get(42).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(map_a->Get(42).status().code(), StatusCode::kNotFound);
}

TEST_F(RpcPathTest, ShardedMapRoutesPerShard) {
  auto& client = env_.NewClient();
  ShardedMap::Options options;
  options.num_shards = 2;
  options.shard = DeepChainOptions();
  auto map = ShardedMap::Create(&client, &env_.alloc(), options);
  ASSERT_TRUE(map.ok());

  // Deep chains in both shards; node 1's agent is saturated while node 0's
  // is idle — the SAME router must send shard-0 batches to the agent and
  // keep shard-1 batches one-sided.
  std::vector<uint64_t> shard_keys[2];
  for (uint64_t k = 1; shard_keys[0].size() < 8 || shard_keys[1].size() < 8;
       ++k) {
    const uint32_t s = map->ShardOf(k);
    if (shard_keys[s].size() < 8 && Mix64(k) % 512 == 3) {
      shard_keys[s].push_back(k);
    }
  }
  for (const auto& keys : shard_keys) {
    for (uint64_t key : keys) {
      ASSERT_TRUE(map->Put(key, key * 2).ok());
    }
  }

  RpcDataplane dataplane(&env_.fabric(), &env_.alloc());
  dataplane.SetLoadFactor(1, 0.9);
  RpcMapPath path(&client, &dataplane);
  DataplaneRouter router(&client);
  ASSERT_TRUE(map->EnableRouting(&router, &path).ok());

  // Small per-shard batches over deep chains: the regime where shipping
  // the walk wins on an idle agent but loses to the one-sided wave engine
  // when the agent queues (M/M/1 at rho = 0.9).
  for (int round = 0; round < 40; ++round) {
    for (size_t pair = 0; pair + 1 < 8; pair += 2) {
      const uint64_t batch[4] = {
          shard_keys[0][pair], shard_keys[0][pair + 1],
          shard_keys[1][pair], shard_keys[1][pair + 1]};
      auto results = map->MultiGet(batch);
      ASSERT_EQ(results.size(), 4u);
      for (size_t i = 0; i < 4; ++i) {
        ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
        EXPECT_EQ(*results[i], batch[i] * 2);
      }
    }
  }
  const NodeId node0 = map->shard(0).home_node();
  const NodeId node1 = map->shard(1).home_node();
  ASSERT_NE(node0, node1);
  const NodeId busy = 1;
  const NodeId idle = node0 == busy ? node1 : node0;
  EXPECT_EQ(router.Preferred(RoutedOp::kMultiGet, idle),
            DataplaneRoute::kRpc);
  EXPECT_EQ(router.Preferred(RoutedOp::kMultiGet, busy),
            DataplaneRoute::kOneSided);
  EXPECT_GT(router.rpc_decisions(), 0u);
  EXPECT_GT(router.one_sided_decisions(), 0u);
}

// ----------------- batched transaction chain walks (E16 sat) ---------------

TEST(TxnMultiGetBatch, DeepChainDoorbellsScaleWithChainNotKeys) {
  TestEnv env(SmallFabric(1, 16ull << 20));
  auto& client = env.NewClient();
  ShardedMap::Options options;
  options.num_shards = 1;
  options.shard = DeepChainOptions();
  auto map = ShardedMap::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(map.ok());

  // 12 keys in ONE bucket chain (depth 12), plus one absent key that hashes
  // to the same bucket (a full-chain negative walk).
  constexpr size_t kDepth = 12;
  const auto keys = CollidingKeys(512, 5, kDepth + 1, /*seed=*/1000);
  for (size_t i = 0; i < kDepth; ++i) {
    ASSERT_TRUE(map->Put(keys[i], keys[i] + 7).ok());
  }

  // Batched arm: every key's walk shares the wave doorbells.
  std::vector<uint64_t> batch(keys.begin(), keys.end());
  const uint64_t batches0 = client.stats().batches;
  const uint64_t far0 = client.stats().far_ops;
  Txn txn(&*map);
  auto results = txn.MultiGet(batch);
  const uint64_t batched_doorbells = client.stats().batches - batches0;
  const uint64_t batched_far = client.stats().far_ops - far0;
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < kDepth; ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    EXPECT_EQ(*results[i], keys[i] + 7);
  }
  EXPECT_EQ(results[kDepth].status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(txn.Commit().ok());

  // The whole 13-key read set must cost O(chain) doorbells — one probe
  // wave plus at most one wave per chain hop — NOT O(keys x chain).
  EXPECT_LE(batched_doorbells, kDepth + 4);

  // Per-key arm on the same read set for contrast: serial TxnReads pay
  // ~depth far round trips PER KEY.
  const uint64_t sync0 = client.stats().far_ops;
  Txn per_key(&*map);
  for (uint64_t key : batch) {
    (void)per_key.Get(key);
  }
  const uint64_t sync_far = client.stats().far_ops - sync0;
  ASSERT_TRUE(per_key.Commit().ok());
  EXPECT_LT(batched_far * 2, sync_far);
}

TEST(TxnMultiGetBatch, ViewsValidateAtCommit) {
  // The batched views are real validation handles: a conflicting write
  // between MultiGet and Commit must abort the transaction.
  TestEnv env(SmallFabric(1, 16ull << 20));
  auto& client = env.NewClient();
  ShardedMap::Options options;
  options.num_shards = 1;
  options.shard = DeepChainOptions();
  auto map = ShardedMap::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(map.ok());
  const auto keys = CollidingKeys(512, 6, 6, /*seed=*/5000);
  for (uint64_t key : keys) {
    ASSERT_TRUE(map->Put(key, 1).ok());
  }

  Txn txn(&*map);
  auto results = txn.MultiGet(keys);
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok());
  }
  ASSERT_TRUE(txn.Put(keys[0], 2).ok());
  // A foreign write to a chain the txn read (deep key, not the one being
  // written) swings the shared bucket word.
  auto& other = env.NewClient();
  auto other_map =
      ShardedMap::Attach(&other, &env.alloc(), map->directory(), options);
  ASSERT_TRUE(other_map.ok());
  ASSERT_TRUE(other_map->Put(keys[3], 99).ok());

  EXPECT_EQ(txn.Commit().code(), StatusCode::kAborted);
}

}  // namespace
}  // namespace fmds
