#include <gtest/gtest.h>

#include "src/apps/monitoring/monitoring.h"
#include "src/sim/event_queue.h"
#include "src/sim/latency_model.h"
#include "src/sim/sim_clock.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

TEST(SimClockTest, AdvancesAndResets) {
  SimClock clock;
  EXPECT_EQ(clock.now_ns(), 0u);
  clock.Advance(100);
  clock.Advance(50);
  EXPECT_EQ(clock.now_ns(), 150u);
  clock.Reset();
  EXPECT_EQ(clock.now_ns(), 0u);
}

TEST(LatencyModelTest, RoundTripScalesWithBytes) {
  LatencyModel model;
  EXPECT_GT(model.FarRoundTripNs(4096), model.FarRoundTripNs(8));
  EXPECT_EQ(model.FarRoundTripNs(0), model.far_base_ns);
  EXPECT_GT(model.RpcNs(64, 64), model.FarRoundTripNs(128));
}

TEST(EventQueueTest, RunsInTimestampOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.ScheduleAt(300, [&] { order.push_back(3); });
  queue.ScheduleAt(100, [&] { order.push_back(1); });
  queue.ScheduleAt(200, [&] { order.push_back(2); });
  EXPECT_EQ(queue.RunUntil(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now_ns(), 300u);
}

TEST(EventQueueTest, StableOrderAtSameTimestamp) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.ScheduleAt(100, [&, i] { order.push_back(i); });
  }
  queue.RunUntil();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue queue;
  int ran = 0;
  queue.ScheduleAt(100, [&] { ++ran; });
  queue.ScheduleAt(500, [&] { ++ran; });
  EXPECT_EQ(queue.RunUntil(250), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_EQ(queue.RunUntil(), 1u);
  EXPECT_EQ(ran, 2);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue queue;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      queue.ScheduleAfter(10, chain);
    }
  };
  queue.ScheduleAt(0, chain);
  queue.RunUntil();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(queue.now_ns(), 40u);
}

TEST(EventQueueTest, NeverSchedulesIntoThePast) {
  EventQueue queue;
  uint64_t observed = 0;
  queue.ScheduleAt(100, [&] {
    queue.ScheduleAt(50, [&] { observed = queue.now_ns(); });  // clamped
  });
  queue.RunUntil();
  EXPECT_EQ(observed, 100u);
}

// Virtual-time replay: drive the §6 monitoring pipeline from a
// deterministic event schedule — producer samples every 1 ms, windows
// rotate every 100 ms, consumer polls every 10 ms.
TEST(EventQueueTest, DrivesMonitoringReplayDeterministically) {
  TestEnv env;
  auto& producer_client = env.NewClient();
  auto& consumer_client = env.NewClient();
  MonitorConfig config;
  config.num_bins = 32;
  config.max_value = 32.0;
  config.warn_bin = 24;
  config.critical_bin = 28;
  config.failure_bin = 30;
  config.alarm_duration = 2;
  config.num_windows = 4;
  auto store = MonitorStore::Create(&producer_client, &env.alloc(), config);
  ASSERT_TRUE(store.ok());
  MetricProducer producer(&*store, &producer_client);
  MetricConsumer consumer(&*store, &consumer_client,
                          AlarmSeverity::kWarning);
  ASSERT_TRUE(consumer.Subscribe().ok());

  EventQueue schedule;
  uint64_t samples = 0;
  uint64_t alarms = 0;
  Rng rng(5);
  constexpr uint64_t kMs = 1'000'000;
  std::function<void()> sample = [&] {
    // Spike into the alarm range between 150 ms and 250 ms.
    const bool spike =
        schedule.now_ns() >= 150 * kMs && schedule.now_ns() < 250 * kMs;
    const double value = spike ? 26.0 : rng.NextDouble() * 20.0;
    ASSERT_TRUE(producer.Record(value).ok());
    ++samples;
    if (schedule.now_ns() < 400 * kMs) {
      schedule.ScheduleAfter(1 * kMs, sample);
    }
  };
  std::function<void()> rotate = [&] {
    ASSERT_TRUE(producer.RotateWindow().ok());
    if (schedule.now_ns() < 400 * kMs) {
      schedule.ScheduleAfter(100 * kMs, rotate);
    }
  };
  std::function<void()> poll = [&] {
    auto polled = consumer.Poll();
    ASSERT_TRUE(polled.ok());
    alarms += polled->size();
    if (schedule.now_ns() < 400 * kMs) {
      schedule.ScheduleAfter(10 * kMs, poll);
    }
  };
  schedule.ScheduleAt(0, sample);
  schedule.ScheduleAt(100 * kMs, rotate);
  schedule.ScheduleAt(5 * kMs, poll);
  schedule.RunUntil(410 * kMs);

  EXPECT_GE(samples, 400u);
  EXPECT_GT(alarms, 0u) << "the 150-250ms spike must alarm";
  EXPECT_GE(consumer.rotations_seen(), 3u);
}

}  // namespace
}  // namespace fmds
