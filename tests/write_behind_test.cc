// Write-behind dataplane (DESIGN.md §11): equivalence against a shadow
// map, read-your-writes via the pending table, FlushBarrier ordering,
// combining under concurrent CAS retries, background eviction vs
// invalidation races, and the Txn drain interop.
#include <gtest/gtest.h>

#include <thread>
#include <unordered_map>
#include <vector>

#include "src/cache/bg_evictor.h"
#include "src/common/rng.h"
#include "src/core/sharded_map.h"
#include "src/core/txn.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

FabricOptions BigFabric(uint32_t nodes = 1) {
  return SmallFabric(nodes, 256ull << 20);
}

HtTree::Options SmallTables(uint64_t buckets = 256) {
  HtTree::Options options;
  options.buckets_per_table = buckets;
  options.max_chain = 4;
  return options;
}

// Write-behind knobs that keep everything staged until a barrier: the
// flusher only wakes for a full batch or a waiting barrier, which makes
// the pre-publish window deterministic in tests.
WriteBehindOptions ManualFlush(size_t max_batch = 1 << 20) {
  WriteBehindOptions wb;
  wb.max_batch = max_batch;
  wb.max_pending = max_batch * 2;
  wb.flush_interval_us = 1000ull * 1000 * 1000;
  return wb;
}

TEST(WriteBehindTest, ReadYourWritesCostsZeroFarOps) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  auto map = HtTree::Create(&client, &env.alloc(), SmallTables());
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->EnableWriteBehind(ManualFlush()).ok());

  const uint64_t before = client.stats().far_ops;
  ASSERT_TRUE(map->Put(1, 100).ok());
  EXPECT_EQ(*map->Get(1), 100u) << "pending table serves the staged write";
  ASSERT_TRUE(map->Put(1, 200).ok());
  EXPECT_EQ(*map->Get(1), 200u) << "newer staged write shadows the older";
  ASSERT_TRUE(map->Remove(1).ok());
  EXPECT_EQ(map->Get(1).status().code(), StatusCode::kNotFound)
      << "pending tombstone reads as absent";
  EXPECT_EQ(client.stats().far_ops - before, 0u)
      << "the app thread never paid a round trip pre-barrier";
  EXPECT_GT(client.stats().writes_combined, 0u);
}

TEST(WriteBehindTest, FlushBarrierPublishesToOtherClients) {
  TestEnv env(BigFabric());
  auto& writer = env.NewClient();
  auto& reader = env.NewClient();
  auto map = HtTree::Create(&writer, &env.alloc(), SmallTables());
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->EnableWriteBehind(ManualFlush()).ok());

  for (uint64_t k = 1; k <= 64; ++k) {
    ASSERT_TRUE(map->Put(k, k * 10).ok());
  }
  ASSERT_TRUE(map->FlushBarrier().ok());

  auto view = HtTree::Attach(&reader, &env.alloc(), map->header(),
                             SmallTables());
  ASSERT_TRUE(view.ok());
  for (uint64_t k = 1; k <= 64; ++k) {
    EXPECT_EQ(*view->Get(k), k * 10) << "key " << k;
  }
  // The pipeline stages ran on the flusher's client, not the app's.
  ASSERT_NE(map->write_behind(), nullptr);
  EXPECT_GT(map->write_behind()->flusher_client()->stats().flush_stages, 0u);
  EXPECT_EQ(writer.stats().flush_stages, 0u);
}

TEST(WriteBehindTest, WriterSideRefillKeepsCacheWarm) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  HtTree::Options options = SmallTables();
  options.cache.budget_bytes = 1 << 20;
  options.cache.admit_after = 0;
  options.cache.word_versioned = true;
  auto map = HtTree::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->EnableWriteBehind(ManualFlush()).ok());

  // Cache the key, then rewrite it through the pipeline: the flusher's
  // RefillCaches pass must leave the entry fresh, so the post-barrier read
  // is a hit (zero far accesses) at the NEW value.
  ASSERT_TRUE(map->Put(5, 50).ok());
  ASSERT_TRUE(map->FlushBarrier().ok());
  EXPECT_EQ(*map->Get(5), 50u);
  ASSERT_TRUE(map->Put(5, 51).ok());
  ASSERT_TRUE(map->FlushBarrier().ok());
  const uint64_t before = client.stats().far_ops;
  EXPECT_EQ(*map->Get(5), 51u);
  EXPECT_EQ(client.stats().far_ops - before, 0u)
      << "writer-side refill served the read from near memory";
}

TEST(WriteBehindTest, RandomizedShadowEquivalence) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  HtTree::Options options = SmallTables();
  options.cache.budget_bytes = 64 << 10;
  options.cache.admit_after = 0;
  auto map = HtTree::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(map.ok());
  WriteBehindOptions wb;
  wb.max_batch = 16;  // small batches: exercise mid-stream publishes
  wb.flush_interval_us = 50;
  ASSERT_TRUE(map->EnableWriteBehind(wb).ok());

  Rng gen(0x5eed5eed);
  std::unordered_map<uint64_t, uint64_t> shadow;
  for (int i = 0; i < 4000; ++i) {
    const uint64_t key = gen.Next() % 257;
    const int op = static_cast<int>(gen.Next() % 10);
    if (op < 6) {
      const uint64_t value = gen.Next() | 1;
      ASSERT_TRUE(map->Put(key, value).ok());
      shadow[key] = value;
    } else if (op < 8) {
      ASSERT_TRUE(map->Remove(key).ok());
      shadow.erase(key);
    } else if (op < 9) {
      auto got = map->Get(key);
      auto want = shadow.find(key);
      if (want == shadow.end()) {
        EXPECT_EQ(got.status().code(), StatusCode::kNotFound) << key;
      } else {
        ASSERT_TRUE(got.ok()) << got.status().message();
        EXPECT_EQ(*got, want->second) << key;
      }
    } else {
      ASSERT_TRUE(map->FlushBarrier().ok());
    }
  }
  ASSERT_TRUE(map->FlushBarrier().ok());
  // Post-drain, a fresh handle agrees with the shadow on every key.
  auto& reader = env.NewClient();
  auto view = HtTree::Attach(&reader, &env.alloc(), map->header(),
                             SmallTables());
  ASSERT_TRUE(view.ok());
  for (uint64_t key = 0; key < 257; ++key) {
    auto got = view->Get(key);
    auto want = shadow.find(key);
    if (want == shadow.end()) {
      EXPECT_EQ(got.status().code(), StatusCode::kNotFound) << key;
    } else {
      ASSERT_TRUE(got.ok()) << got.status().message();
      EXPECT_EQ(*got, want->second) << key;
    }
  }
}

TEST(WriteBehindTest, InterleavedWritersConverge) {
  TestEnv env(BigFabric());
  auto& c1 = env.NewClient();
  auto& c2 = env.NewClient();
  auto owner = HtTree::Create(&c1, &env.alloc(), SmallTables());
  ASSERT_TRUE(owner.ok());
  const FarAddr header = owner->header();

  // Two threads, each with its OWN write-behind handle, on disjoint key
  // ranges; both flushers publish concurrently into the same far map.
  auto writer = [&](FarClient* client, uint64_t base) {
    auto map = HtTree::Attach(client, &env.alloc(), header, SmallTables());
    ASSERT_TRUE(map.ok());
    WriteBehindOptions wb;
    wb.max_batch = 32;
    wb.flush_interval_us = 20;
    ASSERT_TRUE(map->EnableWriteBehind(wb).ok());
    Rng gen(base);
    for (int i = 0; i < 1500; ++i) {
      const uint64_t key = base + gen.Next() % 200;
      ASSERT_TRUE(map->Put(key, key * 7 + 1).ok());
      if (i % 97 == 0) {
        ASSERT_TRUE(map->FlushBarrier().ok());
      }
    }
    ASSERT_TRUE(map->FlushBarrier().ok());
  };
  std::thread t1(writer, &c1, 1000);
  std::thread t2(writer, &c2, 5000);
  t1.join();
  t2.join();

  auto& reader = env.NewClient();
  auto view = HtTree::Attach(&reader, &env.alloc(), header, SmallTables());
  ASSERT_TRUE(view.ok());
  int found = 0;
  for (uint64_t base : {1000u, 5000u}) {
    for (uint64_t key = base; key < base + 200; ++key) {
      auto got = view->Get(key);
      if (got.ok()) {
        EXPECT_EQ(*got, key * 7 + 1);
        ++found;
      }
    }
  }
  EXPECT_GT(found, 100) << "both writers' publishes landed";
}

TEST(WriteBehindTest, CombiningSurvivesConcurrentCasRetries) {
  TestEnv env(BigFabric());
  auto& wb_client = env.NewClient();
  auto& sync_client = env.NewClient();
  auto owner = HtTree::Create(&wb_client, &env.alloc(), SmallTables());
  ASSERT_TRUE(owner.ok());
  const FarAddr header = owner->header();
  WriteBehindOptions wb;
  wb.max_batch = 64;
  wb.flush_interval_us = 10;
  ASSERT_TRUE(owner->EnableWriteBehind(wb).ok());

  constexpr uint64_t kKeys = 16;
  constexpr uint64_t kRounds = 400;
  // Sync writer: hammers the same buckets so the flusher's CAS predictions
  // miss and retry mid-publish.
  std::thread contender([&] {
    auto map = HtTree::Attach(&sync_client, &env.alloc(), header,
                              SmallTables());
    ASSERT_TRUE(map.ok());
    for (uint64_t r = 0; r < kRounds; ++r) {
      ASSERT_TRUE(map->Put(r % kKeys, 1'000'000 + r).ok());
    }
  });
  for (uint64_t r = 0; r < kRounds; ++r) {
    ASSERT_TRUE(owner->Put(r % kKeys, 2'000'000 + r).ok());
  }
  ASSERT_TRUE(owner->FlushBarrier().ok());
  contender.join();

  // Per key, the surviving value is SOME write to that key (no torn or
  // invented values, no lost tombstone resurrection).
  auto& reader = env.NewClient();
  auto view = HtTree::Attach(&reader, &env.alloc(), header, SmallTables());
  ASSERT_TRUE(view.ok());
  for (uint64_t key = 0; key < kKeys; ++key) {
    auto got = view->Get(key);
    ASSERT_TRUE(got.ok()) << got.status().message();
    const bool from_sync = *got >= 1'000'000 && *got < 1'000'000 + kRounds;
    const bool from_wb = *got >= 2'000'000 && *got < 2'000'000 + kRounds;
    EXPECT_TRUE(from_sync || from_wb) << "key " << key << " -> " << *got;
    EXPECT_EQ(*got % kKeys, key) << "value landed on the wrong key";
  }
  EXPECT_GT(wb_client.stats().writes_combined, 0u)
      << "same-key rewrites combined before the doorbell";
}

TEST(WriteBehindTest, FifoModeKeepsPerKeyOrderWithoutCombining) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  auto map = HtTree::Create(&client, &env.alloc(), SmallTables());
  ASSERT_TRUE(map.ok());
  WriteBehindOptions wb = ManualFlush();
  wb.combine = false;
  ASSERT_TRUE(map->EnableWriteBehind(wb).ok());
  for (uint64_t v = 1; v <= 10; ++v) {
    ASSERT_TRUE(map->Put(3, v).ok());
  }
  EXPECT_EQ(*map->Get(3), 10u);
  EXPECT_EQ(client.stats().writes_combined, 0u);
  ASSERT_TRUE(map->FlushBarrier().ok());
  EXPECT_EQ(*map->Get(3), 10u) << "last staged write wins after the drain";
}

TEST(WriteBehindTest, BackgroundEvictionRacesInvalidationSafely) {
  TestEnv env(BigFabric());
  auto& app = env.NewClient();
  auto& writer = env.NewClient();
  HtTree::Options options = SmallTables(/*buckets=*/512);
  // Tiny ring with background mode: admissions stop at the high watermark
  // and ONLY the evictor thread reclaims, while a second client's writes
  // invalidate entries concurrently.
  options.cache.budget_bytes = 8 << 10;
  options.cache.admit_after = 0;
  options.cache.background_eviction = true;
  auto map = HtTree::Create(&app, &env.alloc(), options);
  ASSERT_TRUE(map.ok());
  ASSERT_NE(map->near_cache(), nullptr);

  BackgroundEvictorOptions ev_options;
  ev_options.poll_interval_us = 50;
  BackgroundEvictor evictor(&env.fabric(), /*client_id=*/9001, ev_options);
  evictor.Watch(map->near_cache());

  constexpr uint64_t kKeys = 600;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(map->Put(k, k + 1).ok());
  }
  std::thread invalidator([&] {
    auto far_writer = HtTree::Attach(&writer, &env.alloc(), map->header(),
                                     SmallTables(/*buckets=*/512));
    ASSERT_TRUE(far_writer.ok());
    for (uint64_t k = 0; k < kKeys; k += 3) {
      ASSERT_TRUE(far_writer->Put(k, k + 100).ok());
    }
  });
  for (int round = 0; round < 4; ++round) {
    for (uint64_t k = 0; k < kKeys; ++k) {
      auto got = map->Get(k);
      ASSERT_TRUE(got.ok()) << got.status().message();
      EXPECT_TRUE(*got == k + 1 || *got == k + 100) << "key " << k;
    }
    evictor.SweepNow();
  }
  invalidator.join();
  evictor.Unwatch(map->near_cache());
  evictor.StopAndJoin();

  EXPECT_EQ(map->near_cache()->stats().evictions, 0u)
      << "the app thread never ran a CLOCK sweep";
  EXPECT_GT(evictor.stats().bg_evictions, 0u)
      << "reclamation happened on the evictor's clock";
  // Final reads still agree with far memory.
  for (uint64_t k = 0; k < kKeys; k += 3) {
    EXPECT_EQ(*map->Get(k), k + 100);
  }
}

// ---- ShardedMap-level engine ----

ShardedMap::Options SmallShards(uint32_t num_shards = 4) {
  ShardedMap::Options options;
  options.num_shards = num_shards;
  options.shard = SmallTables();
  return options;
}

TEST(WriteBehindShardedTest, PointOpsAndMultiPutStage) {
  TestEnv env(BigFabric(/*nodes=*/4));
  auto& client = env.NewClient();
  auto map = ShardedMap::Create(&client, &env.alloc(), SmallShards());
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->EnableWriteBehind(ManualFlush()).ok());

  const uint64_t before = client.stats().far_ops;
  std::vector<uint64_t> keys, values;
  for (uint64_t k = 0; k < 128; ++k) {
    keys.push_back(k);
    values.push_back(k * 3 + 1);
  }
  ASSERT_TRUE(map->MultiPut(keys, values).ok());
  ASSERT_TRUE(map->Put(500, 501).ok());
  ASSERT_TRUE(map->Remove(7).ok());
  EXPECT_EQ(client.stats().far_ops - before, 0u) << "all staged, no RTTs";
  EXPECT_EQ(*map->Get(500), 501u);
  EXPECT_EQ(map->Get(7).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(*map->Get(12), 37u) << "MultiPut writes visible pre-barrier";
  auto got = map->MultiGet(std::vector<uint64_t>{1, 7, 500});
  EXPECT_EQ(*got[0], 4u);
  EXPECT_EQ(got[1].status().code(), StatusCode::kNotFound);
  EXPECT_EQ(*got[2], 501u);

  ASSERT_TRUE(map->FlushBarrier().ok());
  auto& reader = env.NewClient();
  auto view = ShardedMap::Attach(&reader, &env.alloc(), map->directory());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(*view->Get(12), 37u);
  EXPECT_EQ(*view->Get(500), 501u);
  EXPECT_EQ(view->Get(7).status().code(), StatusCode::kNotFound);
}

TEST(WriteBehindShardedTest, TxnEntryPointsDrainTheEngine) {
  TestEnv env(BigFabric(/*nodes=*/2));
  auto& client = env.NewClient();
  auto map = ShardedMap::Create(&client, &env.alloc(), SmallShards(2));
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->EnableWriteBehind(ManualFlush()).ok());

  ASSERT_TRUE(map->Put(42, 4200).ok());
  ASSERT_NE(map->write_behind(), nullptr);
  EXPECT_FALSE(map->write_behind()->Empty());
  // A transactional read must see the staged write: the entry point drains
  // the engine before the bucket probe.
  const Status status = RunTxn(&*map, TxnOptions{}, [&](Txn& txn) {
    auto got = txn.Get(42);
    EXPECT_TRUE(got.ok()) << got.status().message();
    if (got.ok()) {
      EXPECT_EQ(*got, 4200u);
    }
    FMDS_RETURN_IF_ERROR(txn.Put(43, 4300));
    return OkStatus();
  });
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_TRUE(map->write_behind()->Empty());
  EXPECT_EQ(*map->Get(43), 4300u);
}

TEST(WriteBehindShardedTest, MultiPutAtomicPublishesAllOrNothing) {
  TestEnv env(BigFabric(/*nodes=*/2));
  auto& client = env.NewClient();
  ShardedMap::Options options = SmallShards(2);
  options.atomic_multiput = true;
  auto map = ShardedMap::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(map.ok());

  const std::vector<uint64_t> keys = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<uint64_t> values = {10, 20, 30, 40, 50, 60, 70, 80};
  const uint64_t commits_before = client.stats().txn_commits;
  ASSERT_TRUE(map->MultiPut(keys, values).ok());
  EXPECT_EQ(client.stats().txn_commits - commits_before, 1u)
      << "atomic_multiput routes through one transaction";
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(*map->Get(keys[i]), values[i]);
  }
}

TEST(WriteBehindShardedTest, GlobalBudgetCapsFleetBytes) {
  TestEnv env(BigFabric(/*nodes=*/4));
  auto& client = env.NewClient();
  ShardedMap::Options options = SmallShards(4);
  options.shard.cache.admit_after = 0;
  options.global_cache_budget_bytes = 16 << 10;
  auto map = ShardedMap::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(map.ok());
  ASSERT_NE(map->shared_cache_budget(), nullptr);

  for (uint64_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(map->Put(k, k + 1).ok());
    (void)map->Get(k);
  }
  EXPECT_LE(map->near_cache_bytes(), 16u << 10)
      << "summed shard rings respect the fleet-wide budget";
  EXPECT_EQ(map->near_cache_bytes(),
            map->shared_cache_budget()->used.load())
      << "near_cache_bytes reports the shared total";
  // Reads still correct under constant budget pressure.
  for (uint64_t k = 0; k < 2000; k += 37) {
    EXPECT_EQ(*map->Get(k), k + 1);
  }
}

}  // namespace
}  // namespace fmds
