#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

NotifySpec OnWrite(FarAddr addr, uint64_t len = kWordSize) {
  NotifySpec spec;
  spec.mode = NotifyMode::kOnWrite;
  spec.addr = addr;
  spec.len = len;
  return spec;
}

TEST(NotifyTest, Notify0FiresOnWrite) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto& watcher = env.NewClient();
  ASSERT_TRUE(watcher.Subscribe(OnWrite(64)).ok());
  ASSERT_TRUE(writer.WriteWord(64, 42).ok());
  auto event = watcher.PollNotification();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, NotifyEventKind::kChanged);
  EXPECT_EQ(event->addr, 64u);
  EXPECT_EQ(event->len, 8u);
}

TEST(NotifyTest, NoEventWithoutWrite) {
  TestEnv env;
  auto& watcher = env.NewClient();
  ASSERT_TRUE(watcher.Subscribe(OnWrite(64)).ok());
  EXPECT_FALSE(watcher.PollNotification().has_value());
}

TEST(NotifyTest, OutsideRangeDoesNotFire) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto& watcher = env.NewClient();
  ASSERT_TRUE(watcher.Subscribe(OnWrite(64, 16)).ok());
  ASSERT_TRUE(writer.WriteWord(96, 1).ok());
  EXPECT_FALSE(watcher.PollNotification().has_value());
  ASSERT_TRUE(writer.WriteWord(72, 1).ok());  // inside [64, 80)
  EXPECT_TRUE(watcher.PollNotification().has_value());
}

TEST(NotifyTest, RangeWriteIntersectionReported) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto& watcher = env.NewClient();
  ASSERT_TRUE(watcher.Subscribe(OnWrite(64, 32)).ok());
  std::vector<std::byte> data(64, std::byte{1});
  ASSERT_TRUE(writer.Write(32, data).ok());  // covers [32, 96)
  auto event = watcher.PollNotification();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->addr, 64u);  // clipped to the subscription
  EXPECT_EQ(event->len, 32u);
}

TEST(NotifyTest, AtomicsPublishToo) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto& watcher = env.NewClient();
  ASSERT_TRUE(watcher.Subscribe(OnWrite(64)).ok());
  ASSERT_TRUE(writer.FetchAdd(64, 1).ok());
  EXPECT_TRUE(watcher.PollNotification().has_value());
  ASSERT_TRUE(writer.CompareSwap(64, 1, 2).ok());
  EXPECT_TRUE(watcher.PollNotification().has_value());
  // Failed CAS does not publish.
  ASSERT_TRUE(writer.CompareSwap(64, 99, 3).ok());
  EXPECT_FALSE(watcher.PollNotification().has_value());
}

TEST(NotifyTest, NotifyeFiresOnlyOnTargetValue) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto& watcher = env.NewClient();
  NotifySpec spec;
  spec.mode = NotifyMode::kOnEqual;
  spec.addr = 64;
  spec.len = kWordSize;
  spec.value = 0;  // mutex-free convention
  ASSERT_TRUE(watcher.Subscribe(spec).ok());
  ASSERT_TRUE(writer.WriteWord(64, 7).ok());
  EXPECT_FALSE(watcher.PollNotification().has_value());
  ASSERT_TRUE(writer.WriteWord(64, 0).ok());
  EXPECT_TRUE(watcher.PollNotification().has_value());
}

TEST(NotifyTest, Notify0dCarriesData) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto& watcher = env.NewClient();
  NotifySpec spec;
  spec.mode = NotifyMode::kOnWriteData;
  spec.addr = 64;
  spec.len = 16;
  ASSERT_TRUE(watcher.Subscribe(spec).ok());
  ASSERT_TRUE(writer.WriteWord(72, 0xabcd).ok());
  auto event = watcher.PollNotification();
  ASSERT_TRUE(event.has_value());
  ASSERT_EQ(event->data.size(), 8u);  // only the intersecting word
  EXPECT_EQ(LoadAs<uint64_t>(std::span<const std::byte>(event->data)),
            0xabcdull);
}

TEST(NotifyTest, PageCrossingSubscriptionRejected) {
  TestEnv env;
  auto& watcher = env.NewClient();
  EXPECT_FALSE(watcher.Subscribe(OnWrite(kPageSize - 8, 16)).ok());
  EXPECT_TRUE(watcher.Subscribe(OnWrite(kPageSize - 8, 8)).ok());
}

TEST(NotifyTest, UnalignedSubscriptionRejected) {
  TestEnv env;
  auto& watcher = env.NewClient();
  EXPECT_FALSE(watcher.Subscribe(OnWrite(65)).ok());
}

TEST(NotifyTest, UnsubscribeStopsEvents) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto& watcher = env.NewClient();
  auto sub = watcher.Subscribe(OnWrite(64));
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(watcher.Unsubscribe(*sub).ok());
  ASSERT_TRUE(writer.WriteWord(64, 1).ok());
  EXPECT_FALSE(watcher.PollNotification().has_value());
  EXPECT_FALSE(watcher.Unsubscribe(*sub).ok());  // idempotence check
}

TEST(NotifyTest, DropPolicyLosesRoughlyTheConfiguredFraction) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto& watcher = env.NewClient();
  NotifySpec spec = OnWrite(64);
  spec.policy.drop_probability = 0.5;
  spec.policy.coalesce = false;
  ASSERT_TRUE(watcher.Subscribe(spec).ok());
  constexpr int kWrites = 2000;
  for (int i = 0; i < kWrites; ++i) {
    ASSERT_TRUE(writer.WriteWord(64, i + 1).ok());
    watcher.channel().Drain();  // keep the channel from overflowing
  }
  const uint64_t dropped =
      env.fabric().node(0).stats().notifications_dropped.load();
  EXPECT_NEAR(static_cast<double>(dropped), kWrites * 0.5, kWrites * 0.1);
}

TEST(NotifyTest, CoalescingMergesBackToBackEvents) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto& watcher = env.NewClient();
  NotifySpec spec = OnWrite(64, 32);
  spec.policy.coalesce = true;
  ASSERT_TRUE(watcher.Subscribe(spec).ok());
  ASSERT_TRUE(writer.WriteWord(64, 1).ok());
  ASSERT_TRUE(writer.WriteWord(80, 2).ok());
  ASSERT_TRUE(writer.WriteWord(72, 3).ok());
  // One merged event covering [64, 88).
  auto event = watcher.PollNotification();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->coalesced, 2u);
  EXPECT_EQ(event->addr, 64u);
  EXPECT_EQ(event->len, 24u);
  EXPECT_FALSE(watcher.PollNotification().has_value());
  EXPECT_EQ(watcher.channel().coalesced(), 2u);
}

TEST(NotifyTest, OverflowSurfacesLossWarning) {
  TestEnv env;
  auto& writer = env.NewClient();
  ClientOptions small;
  small.channel_capacity = 4;
  FarClient watcher(&env.fabric(), 99, small);
  NotifySpec spec = OnWrite(64);
  spec.policy.coalesce = false;
  ASSERT_TRUE(watcher.Subscribe(spec).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(writer.WriteWord(64, i + 1).ok());
  }
  bool saw_loss = false;
  while (auto event = watcher.PollNotification()) {
    saw_loss |= event->kind == NotifyEventKind::kLossWarning;
  }
  EXPECT_TRUE(saw_loss);
  EXPECT_GT(watcher.channel().overflow_lost(), 0u);
}

TEST(NotifyTest, TwoSubscribersBothFire) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto& w1 = env.NewClient();
  auto& w2 = env.NewClient();
  ASSERT_TRUE(w1.Subscribe(OnWrite(64)).ok());
  ASSERT_TRUE(w2.Subscribe(OnWrite(64)).ok());
  ASSERT_TRUE(writer.WriteWord(64, 5).ok());
  EXPECT_TRUE(w1.PollNotification().has_value());
  EXPECT_TRUE(w2.PollNotification().has_value());
}

TEST(NotifyTest, SubscriptionOnStripedNodeRoutesToOwner) {
  TestEnv env(StripedFabric(4, kPageSize, 1 << 20));
  auto& writer = env.NewClient();
  auto& watcher = env.NewClient();
  const FarAddr addr = 2 * kPageSize + 128;  // node 2
  ASSERT_TRUE(watcher.Subscribe(OnWrite(addr)).ok());
  EXPECT_EQ(env.fabric().node(2).subscription_count(), 1u);
  ASSERT_TRUE(writer.WriteWord(addr, 1).ok());
  EXPECT_TRUE(watcher.PollNotification().has_value());
}

TEST(NotifyTest, SubscribeSnapshotReadsArmTimeWord) {
  // Read-and-arm: the snapshot is the watched word at registration time,
  // taken atomically with the registration. A subscriber that read the
  // word *before* subscribing compares the two to detect a raced write.
  TestEnv env;
  auto& writer = env.NewClient();
  auto& watcher = env.NewClient();
  ASSERT_TRUE(writer.WriteWord(64, 7).ok());
  uint64_t snapshot = 123;
  ASSERT_TRUE(watcher.Subscribe(OnWrite(64), &snapshot).ok());
  EXPECT_EQ(snapshot, 7u) << "snapshot must reflect the pre-arm write";
  // The pre-arm write produced no event; the next write does.
  EXPECT_FALSE(watcher.PollNotification().has_value());
  ASSERT_TRUE(writer.WriteWord(64, 8).ok());
  EXPECT_TRUE(watcher.PollNotification().has_value());
}

struct CountingSink : NotificationSink {
  int events = 0;
  void OnNotify(const NotifyEvent&) override { ++events; }
};

TEST(NotifyTest, ParkedEventsCountedOnceAcrossDispatchAndPoll) {
  // One client with a sink-routed subscription AND a poll-style one (the
  // near cache plus the HT-tree's split watch, in miniature). The event
  // parked by DispatchNotifications() must bump the notification stat only
  // when PollNotification() delivers it — not once at the drain and again
  // at the poll (regression: parked events were double-counted).
  TestEnv env;
  auto& writer = env.NewClient();
  auto& watcher = env.NewClient();
  CountingSink sink;
  ASSERT_TRUE(watcher.Subscribe(OnWrite(64), &sink).ok());
  ASSERT_TRUE(watcher.Subscribe(OnWrite(128)).ok());  // poll-style
  ASSERT_TRUE(writer.WriteWord(64, 1).ok());
  ASSERT_TRUE(writer.WriteWord(128, 2).ok());
  EXPECT_EQ(watcher.DispatchNotifications(), 1u) << "only the sink event";
  EXPECT_EQ(sink.events, 1);
  EXPECT_EQ(watcher.stats().notifications, 1u)
      << "the parked event is not yet delivered";
  auto parked = watcher.PollNotification();
  ASSERT_TRUE(parked.has_value());
  EXPECT_EQ(parked->addr, 128u);
  EXPECT_EQ(watcher.stats().notifications, 2u)
      << "two events delivered, two counted — no double count";
  EXPECT_FALSE(watcher.PollNotification().has_value());
}

TEST(NotifyChannelTest, DrainReturnsEverything) {
  NotificationChannel channel;
  for (int i = 0; i < 5; ++i) {
    NotifyEvent ev;
    ev.sub_id = i + 1;
    channel.Publish(std::move(ev), /*coalesce=*/false);
  }
  EXPECT_EQ(channel.size(), 5u);
  EXPECT_EQ(channel.Drain().size(), 5u);
  EXPECT_EQ(channel.size(), 0u);
}

}  // namespace
}  // namespace fmds
