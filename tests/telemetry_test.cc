// TelemetryHub / GaugeGroup / TelemetrySnapshotter tests: registry
// semantics (sorted snapshots, non-finite clamping, RAII unregistration),
// Prometheus text export, JSON escaping, snapshotter lifecycle (start/stop
// idempotence, restart-appends, final tick on stop), the JSON-lines schema
// of every emitted tick, and a TSan-facing stress run with recording
// threads live while the snapshotter samples.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/recorder.h"
#include "src/obs/telemetry.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "fmds_telemetry_" + name + ".jsonl";
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

// ------------------------------ TelemetryHub ------------------------------

TEST(TelemetryHubTest, SnapshotIsSortedAndClampsNonFinite) {
  TelemetryHub hub;
  hub.AddGauge("zz.last", [] { return 3.0; });
  hub.AddGauge("aa.first", [] { return 1.0; });
  hub.AddGauge("mm.nan", [] { return std::nan(""); });
  hub.AddGauge("mm.inf", [] { return HUGE_VAL; });
  ASSERT_EQ(hub.gauge_count(), 4u);
  const auto samples = hub.Snapshot();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].name, "aa.first");
  EXPECT_EQ(samples[3].name, "zz.last");
  for (const auto& s : samples) {
    if (s.name.rfind("mm.", 0) == 0) {
      EXPECT_EQ(s.value, 0.0) << s.name;
    }
  }
}

TEST(TelemetryHubTest, AddGaugeReplacesAndRemoveDeletes) {
  TelemetryHub hub;
  hub.AddGauge("g", [] { return 1.0; });
  hub.AddGauge("g", [] { return 2.0; });
  EXPECT_EQ(hub.gauge_count(), 1u);
  EXPECT_EQ(hub.Snapshot()[0].value, 2.0);
  hub.RemoveGauge("g");
  EXPECT_EQ(hub.gauge_count(), 0u);
  hub.RemoveGauge("g");  // idempotent
}

TEST(TelemetryHubTest, PromExportSanitizesNames) {
  TelemetryHub hub;
  hub.AddGauge("wb.pending-entries", [] { return 12.0; });
  const std::string prom = hub.ExportPromText();
  EXPECT_NE(prom.find("fmds_wb_pending_entries"), std::string::npos);
  EXPECT_EQ(prom.find('-'), std::string::npos);
  EXPECT_NE(prom.find("12"), std::string::npos);
}

TEST(TelemetryHubTest, JsonObjectEscapesAndSorts) {
  TelemetryHub hub;
  hub.AddGauge("b\"quote", [] { return 1.0; });
  hub.AddGauge("a\\slash", [] { return 2.0; });
  std::ostringstream os;
  hub.WriteJsonObject(os);
  const std::string json = os.str();
  // Escaped names, 'a' before 'b'.
  const size_t a = json.find("a\\\\slash");
  const size_t b = json.find("b\\\"quote");
  ASSERT_NE(a, std::string::npos) << json;
  ASSERT_NE(b, std::string::npos) << json;
  EXPECT_LT(a, b);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// ------------------------------- GaugeGroup -------------------------------

TEST(GaugeGroupTest, ReleasesOnDestruction) {
  TelemetryHub hub;
  {
    GaugeGroup group(&hub);
    group.Add("one", [] { return 1.0; });
    group.Add("two", [] { return 2.0; });
    EXPECT_EQ(group.size(), 2u);
    EXPECT_EQ(hub.gauge_count(), 2u);
  }
  EXPECT_EQ(hub.gauge_count(), 0u);
}

TEST(GaugeGroupTest, ExplicitReleaseIsIdempotent) {
  TelemetryHub hub;
  GaugeGroup group(&hub);
  group.Add("g", [] { return 1.0; });
  group.Release();
  group.Release();
  EXPECT_EQ(hub.gauge_count(), 0u);
}

// --------------------------- snapshotter lifecycle ---------------------------

TEST(SnapshotterTest, StartStopIdempotentAndFinalTick) {
  TelemetryHub hub;
  hub.AddGauge("x", [] { return 7.0; });
  SnapshotterOptions opts;
  opts.path = TempPath("lifecycle");
  std::remove(opts.path.c_str());
  opts.interval_ms = 1000;  // long: ticks come from Stop()'s final tick
  TelemetrySnapshotter snap(&hub, opts);
  EXPECT_FALSE(snap.running());
  ASSERT_TRUE(snap.Start().ok());
  ASSERT_TRUE(snap.Start().ok());  // second Start is a no-op
  EXPECT_TRUE(snap.running());
  snap.Stop();
  EXPECT_FALSE(snap.running());
  snap.Stop();  // idempotent
  EXPECT_GE(snap.ticks(), 1u) << "Stop must take a final tick";
  const uint64_t after_first = snap.ticks();

  // Restart appends to the same file.
  ASSERT_TRUE(snap.Start().ok());
  snap.Stop();
  EXPECT_GT(snap.ticks(), after_first);
  EXPECT_GE(ReadLines(opts.path).size(), 2u);
  std::remove(opts.path.c_str());
}

TEST(SnapshotterTest, TickNowWorksWithoutStartAndWithEmptyPath) {
  TelemetryHub hub;
  hub.AddGauge("x", [] { return 1.0; });
  TelemetrySnapshotter snap(&hub, SnapshotterOptions{});  // no output file
  snap.TickNow();
  snap.TickNow();
  EXPECT_EQ(snap.ticks(), 2u);
  EXPECT_FALSE(snap.running());
}

TEST(SnapshotterTest, JsonLinesSchemaPerTick) {
  TelemetryHub hub;
  std::atomic<double> v{1.5};
  hub.AddGauge("node0.ops_per_sec", [&] { return v.load(); });
  hub.AddGauge("wb.pending", [] { return 4.0; });
  SnapshotterOptions opts;
  opts.path = TempPath("schema");
  std::remove(opts.path.c_str());
  opts.interval_ms = 1000;
  TelemetrySnapshotter snap(&hub, opts);
  ASSERT_TRUE(snap.Start().ok());
  snap.TickNow();
  v.store(2.5);
  snap.TickNow();
  snap.Stop();

  const auto lines = ReadLines(opts.path);
  ASSERT_GE(lines.size(), 3u);  // 2 explicit ticks + final tick on Stop
  int64_t prev_tick = -1;  // tick numbering starts at 0
  for (const std::string& line : lines) {
    // Every tick is one self-contained JSON object with the fixed key
    // skeleton consumers grep for.
    ASSERT_EQ(line.rfind("{\"tick\":", 0), 0u) << line;
    EXPECT_NE(line.find("\"wall_ms\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"gauges\":{"), std::string::npos) << line;
    EXPECT_NE(line.find("\"node0.ops_per_sec\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"wb.pending\":"), std::string::npos) << line;
    EXPECT_EQ(line.back(), '}') << line;
    // Ticks strictly increase across lines.
    const int64_t tick = std::stoll(line.substr(8));
    EXPECT_GT(tick, prev_tick) << line;
    prev_tick = tick;
  }
  std::remove(opts.path.c_str());
}

// ------------------------- concurrent sampling (TSan) -------------------------

TEST(SnapshotterTest, ConcurrentRecordingAndSampling) {
  // Two owner threads record windowed signals on their own clients while
  // the snapshotter thread samples their gauges at full speed and the main
  // thread polls the reader API — the torn-read surface TSan checks.
  TestEnv env(SmallFabric(2, 16ull << 20));
  FarClient& a = env.NewClient();
  FarClient& b = env.NewClient();
  a.EnableObs(ObsOptions::WindowedOnly());
  b.EnableObs(ObsOptions::WindowedOnly());

  TelemetryHub hub;
  GaugeGroup gauges(&hub);
  a.recorder().AddGauges(&gauges, "a", env.fabric().num_nodes());
  b.recorder().AddGauges(&gauges, "b", env.fabric().num_nodes());

  SnapshotterOptions opts;
  opts.path = TempPath("tsan");
  std::remove(opts.path.c_str());
  opts.interval_ms = 1;
  TelemetrySnapshotter snap(&hub, opts);
  ASSERT_TRUE(snap.Start().ok());

  const auto worker = [](FarClient* client) {
    for (int i = 0; i < 20000; ++i) {
      ASSERT_TRUE(client->WriteWord(8 * (i % 512), i).ok());
      ASSERT_TRUE(client->ReadWord(8 * (i % 512)).ok());
    }
    client->recorder().windowed()->Drain();
  };
  std::thread ta(worker, &a);
  std::thread tb(worker, &b);
  for (int i = 0; i < 50; ++i) {
    (void)a.recorder().RecentP99All();
    (void)b.recorder().RecentOpsPerSec(0);
    (void)hub.Snapshot();
  }
  ta.join();
  tb.join();
  snap.Stop();

  EXPECT_GE(snap.ticks(), 1u);
  EXPECT_GT(a.recorder().windowed()->RecentCountAll(), 0u);
  EXPECT_EQ(a.recorder().windowed()->RecentCountAll(),
            b.recorder().windowed()->RecentCountAll());
  double node_rate_sum = 0.0;
  for (size_t n = 0; n < a.recorder().windowed()->node_count(); ++n) {
    node_rate_sum += a.recorder().RecentOpsPerSec(static_cast<NodeId>(n));
  }
  EXPECT_GT(node_rate_sum, 0.0);
  gauges.Release();
  std::remove(opts.path.c_str());
}

}  // namespace
}  // namespace fmds
