#include <gtest/gtest.h>

#include "src/perfmodel/throughput_model.h"

namespace fmds {
namespace {

TEST(PerfModelTest, SingleClientLatencyIsDelayPlusDemand) {
  WorkloadCost cost;
  cost.delay_ns = 1000.0;
  cost.bottleneck_demand_ns = 400.0;
  auto point = SolveClosedSystem(cost, 1);
  EXPECT_NEAR(point.latency_ns, 1400.0, 1.0);
  EXPECT_NEAR(point.ops_per_sec, 1e9 / 1400.0, 1e3);
}

TEST(PerfModelTest, ThroughputSaturatesAtServiceRate) {
  WorkloadCost cost;
  cost.delay_ns = 1000.0;
  cost.bottleneck_demand_ns = 400.0;
  auto saturated = SolveClosedSystem(cost, 256);
  EXPECT_NEAR(saturated.ops_per_sec, 1e9 / 400.0, 1e9 / 400.0 * 0.02);
  EXPECT_NEAR(saturated.utilization, 1.0, 0.02);
}

TEST(PerfModelTest, ThroughputMonotonicInClients) {
  WorkloadCost cost;
  cost.delay_ns = 2000.0;
  cost.bottleneck_demand_ns = 100.0;
  double prev = 0.0;
  for (uint32_t n : {1u, 2u, 4u, 8u, 16u, 64u}) {
    auto point = SolveClosedSystem(cost, n);
    EXPECT_GE(point.ops_per_sec, prev - 1.0);
    prev = point.ops_per_sec;
  }
}

TEST(PerfModelTest, MoreStationsRaiseTheCeiling) {
  WorkloadCost one;
  one.delay_ns = 1000.0;
  one.bottleneck_demand_ns = 400.0;
  one.bottleneck_stations = 1;
  WorkloadCost four = one;
  four.bottleneck_stations = 4;
  EXPECT_GT(SolveClosedSystem(four, 512).ops_per_sec,
            3.5 * SolveClosedSystem(one, 512).ops_per_sec);
}

TEST(PerfModelTest, RpcVsOneSidedCrossover) {
  // §3.1's shape. RPC: one round trip but heavy serialized server CPU.
  WorkloadCost rpc;
  rpc.delay_ns = 1000.0;
  rpc.bottleneck_demand_ns = 400.0;  // server CPU per request
  // One-sided HT-tree-style: one round trip, tiny memory-controller demand.
  WorkloadCost one_sided;
  one_sided.delay_ns = 1000.0;
  one_sided.bottleneck_demand_ns = 50.0;
  // One-sided *traditional* structure: several round trips.
  WorkloadCost multi_rtt;
  multi_rtt.delay_ns = 3000.0;
  multi_rtt.bottleneck_demand_ns = 150.0;

  // Few clients: RPC beats the multi-round-trip one-sided design...
  EXPECT_GT(SolveClosedSystem(rpc, 2).ops_per_sec,
            SolveClosedSystem(multi_rtt, 2).ops_per_sec);
  // ...but the 1-access one-sided design matches RPC at low load...
  EXPECT_NEAR(SolveClosedSystem(one_sided, 1).latency_ns,
              SolveClosedSystem(rpc, 1).latency_ns, 400.0);
  // ...and at scale the RPC server saturates while 1-access one-sided
  // keeps scaling.
  EXPECT_GT(SolveClosedSystem(one_sided, 128).ops_per_sec,
            3.0 * SolveClosedSystem(rpc, 128).ops_per_sec);
}

TEST(PerfModelTest, SweepReturnsAllPoints) {
  WorkloadCost cost;
  cost.delay_ns = 1000.0;
  cost.bottleneck_demand_ns = 100.0;
  auto points = SweepClients(cost, {1, 2, 4});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].clients, 1u);
  EXPECT_EQ(points[2].clients, 4u);
}

}  // namespace
}  // namespace fmds
