// ShardedMap (§7 scale-out): routing, placement pinning, batched fan-out
// equivalence with the synchronous paths, and the fan-out accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/core/sharded_map.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

TEST(ShardedMapTest, PointOpsRouteAndRoundTrip) {
  TestEnv env(SmallFabric(4, 16ull << 20));
  auto& client = env.NewClient();
  ShardedMap::Options options;
  options.num_shards = 4;
  options.shard.buckets_per_table = 64;
  auto map = ShardedMap::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(map.ok());
  for (uint64_t k = 1; k <= 500; ++k) {
    ASSERT_TRUE(map->Put(k, k * 11).ok());
  }
  for (uint64_t k = 1; k <= 500; ++k) {
    auto v = map->Get(k);
    ASSERT_TRUE(v.ok()) << "key " << k;
    EXPECT_EQ(*v, k * 11);
  }
  ASSERT_TRUE(map->Remove(123).ok());
  EXPECT_EQ(map->Get(123).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(map->Get(501).ok());
  // 500 keys over 4 shards: every shard must have seen traffic.
  for (uint32_t s = 0; s < map->num_shards(); ++s) {
    EXPECT_GT(map->shard(s).op_stats().puts, 0u) << "shard " << s;
  }
}

TEST(ShardedMapTest, ShardsArePinnedOnePerNode) {
  TestEnv env(SmallFabric(4, 16ull << 20));
  auto& client = env.NewClient();
  ShardedMap::Options options;
  options.num_shards = 8;  // wraps: shard i on node i % 4
  options.shard.buckets_per_table = 64;
  auto map = ShardedMap::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(map.ok());
  for (uint32_t s = 0; s < map->num_shards(); ++s) {
    auto loc = env.fabric().Translate(map->shard(s).header());
    ASSERT_TRUE(loc.ok());
    EXPECT_EQ(loc->node, s % 4) << "shard " << s;
  }
}

TEST(ShardedMapTest, ShardBoundaryKeysSurvive) {
  // Extremes and near-boundary keys of the 64-bit key space, including the
  // values whose salted hashes land on every shard residue.
  TestEnv env(SmallFabric(2, 16ull << 20));
  auto& client = env.NewClient();
  ShardedMap::Options options;
  options.num_shards = 3;  // non-power-of-two on a 2-node fabric
  options.shard.buckets_per_table = 32;
  auto map = ShardedMap::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(map.ok());
  std::vector<uint64_t> keys{0,
                             1,
                             2,
                             UINT64_MAX,
                             UINT64_MAX - 1,
                             UINT64_MAX / 2,
                             UINT64_MAX / 2 + 1,
                             1ull << 63,
                             (1ull << 63) - 1};
  // Cover every shard explicitly.
  std::vector<bool> covered(map->num_shards(), false);
  for (uint64_t k = 100; covered != std::vector<bool>(map->num_shards(), true);
       ++k) {
    if (!covered[map->ShardOf(k)]) {
      covered[map->ShardOf(k)] = true;
      keys.push_back(k);
    }
  }
  for (uint64_t k : keys) {
    ASSERT_TRUE(map->Put(k, ~k).ok()) << "key " << k;
  }
  for (uint64_t k : keys) {
    auto v = map->Get(k);
    ASSERT_TRUE(v.ok()) << "key " << k;
    EXPECT_EQ(*v, ~k);
  }
  for (uint64_t k : keys) {
    ASSERT_TRUE(map->Remove(k).ok()) << "key " << k;
    EXPECT_EQ(map->Get(k).status().code(), StatusCode::kNotFound);
  }
}

TEST(ShardedMapTest, MultiGetMatchesSyncGets) {
  // Equivalence property: for a random mix of present, absent, and removed
  // keys, the one-doorbell-per-wave MultiGet must agree with Get key by key.
  TestEnv env(SmallFabric(4, 16ull << 20));
  auto& client = env.NewClient();
  ShardedMap::Options options;
  options.num_shards = 4;
  options.shard.buckets_per_table = 64;  // small tables: chains and splits
  auto map = ShardedMap::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(map.ok());
  Rng rng(42);
  for (uint64_t k = 1; k <= 800; ++k) {
    ASSERT_TRUE(map->Put(k, Mix64(k)).ok());
  }
  for (uint64_t k = 1; k <= 800; k += 7) {
    ASSERT_TRUE(map->Remove(k).ok());
  }
  std::vector<uint64_t> batch;
  for (int i = 0; i < 256; ++i) {
    batch.push_back(rng.NextInRange(1, 1000));  // some keys absent
  }
  auto batched = map->MultiGet(batch);
  ASSERT_EQ(batched.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    auto sync = map->Get(batch[i]);
    ASSERT_EQ(batched[i].ok(), sync.ok()) << "key " << batch[i];
    if (sync.ok()) {
      EXPECT_EQ(*batched[i], *sync) << "key " << batch[i];
    } else {
      EXPECT_EQ(batched[i].status().code(), sync.status().code());
    }
  }
}

TEST(ShardedMapTest, MultiPutMatchesSyncState) {
  TestEnv env(SmallFabric(4, 16ull << 20));
  auto& client = env.NewClient();
  ShardedMap::Options options;
  options.num_shards = 4;
  options.shard.buckets_per_table = 64;
  auto map = ShardedMap::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(map.ok());
  std::vector<uint64_t> keys;
  std::vector<uint64_t> values;
  for (uint64_t k = 1; k <= 512; ++k) {
    keys.push_back(k);
    values.push_back(k * 2);
  }
  ASSERT_TRUE(map->MultiPut(keys, values).ok());
  for (uint64_t k = 1; k <= 512; ++k) {
    auto v = map->Get(k);
    ASSERT_TRUE(v.ok()) << "key " << k;
    EXPECT_EQ(*v, k * 2);
  }
  // Overwrites through a second batch win over the first.
  for (auto& v : values) {
    v += 1000000;
  }
  ASSERT_TRUE(map->MultiPut(keys, values).ok());
  for (uint64_t k = 1; k <= 512; ++k) {
    EXPECT_EQ(*map->Get(k), k * 2 + 1000000);
  }
  EXPECT_FALSE(map->MultiPut(keys, std::span<const uint64_t>(values)
                                       .subspan(0, 3))
                   .ok());
}

TEST(ShardedMapTest, SameBucketDuplicatesInOneBatchResolve) {
  // Duplicate keys inside one MultiPut collide on the bucket CAS; the loser
  // must fall back and the final value must be one of the two written.
  TestEnv env(SmallFabric(2, 16ull << 20));
  auto& client = env.NewClient();
  ShardedMap::Options options;
  options.num_shards = 2;
  options.shard.buckets_per_table = 32;
  auto map = ShardedMap::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(map.ok());
  const std::vector<uint64_t> keys{9, 9, 9, 10, 10};
  const std::vector<uint64_t> values{1, 2, 3, 4, 5};
  ASSERT_TRUE(map->MultiPut(keys, values).ok());
  auto v9 = map->Get(9);
  ASSERT_TRUE(v9.ok());
  EXPECT_TRUE(*v9 == 1 || *v9 == 2 || *v9 == 3);
  auto v10 = map->Get(10);
  ASSERT_TRUE(v10.ok());
  EXPECT_TRUE(*v10 == 4 || *v10 == 5);
}

TEST(ShardedMapTest, FanOutAccountingSpansNodes) {
  TestEnv env(SmallFabric(4, 16ull << 20));
  auto& client = env.NewClient();
  ShardedMap::Options options;
  options.num_shards = 4;
  options.shard.buckets_per_table = 256;
  auto map = ShardedMap::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(map.ok());
  std::vector<uint64_t> keys;
  std::vector<uint64_t> values;
  for (uint64_t k = 1; k <= 64; ++k) {
    keys.push_back(k);
    values.push_back(k);
  }
  ASSERT_TRUE(map->MultiPut(keys, values).ok());
  const ClientStats before = client.stats();
  for (auto& r : map->MultiGet(keys)) {
    ASSERT_TRUE(r.ok());
  }
  const ClientStats delta = client.stats().Delta(before);
  // 64 keys over 4 pinned shards: the probe wave spans all 4 nodes in one
  // doorbell, overlapping 3 node round trips.
  EXPECT_GT(delta.fanout_batches, 0u);
  EXPECT_GE(delta.cross_node_rtts_saved, 3u);
  // Spanning nodes does not add waited round trips per key.
  EXPECT_LT(static_cast<double>(delta.far_ops) / keys.size(), 1.0);
}

TEST(ShardedMapTest, AttachSeesExistingData) {
  TestEnv env(SmallFabric(4, 16ull << 20));
  auto& writer = env.NewClient();
  auto& reader = env.NewClient();
  ShardedMap::Options options;
  options.num_shards = 4;
  options.shard.buckets_per_table = 64;
  auto map_w = ShardedMap::Create(&writer, &env.alloc(), options);
  ASSERT_TRUE(map_w.ok());
  for (uint64_t k = 1; k <= 200; ++k) {
    ASSERT_TRUE(map_w->Put(k, k + 7).ok());
  }
  auto map_r = ShardedMap::Attach(&reader, &env.alloc(), map_w->directory());
  ASSERT_TRUE(map_r.ok());
  EXPECT_EQ(map_r->num_shards(), 4u);
  for (uint64_t k = 1; k <= 200; ++k) {
    auto v = map_r->Get(k);
    ASSERT_TRUE(v.ok()) << "key " << k;
    EXPECT_EQ(*v, k + 7);
  }
  std::vector<uint64_t> batch{1, 50, 100, 150, 200, 999};
  auto results = map_r->MultiGet(batch);
  for (size_t i = 0; i + 1 < batch.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(*results[i], batch[i] + 7);
  }
  EXPECT_EQ(results.back().status().code(), StatusCode::kNotFound);
}

TEST(ShardedMapTest, ConcurrentBatchedWritersStayConsistent) {
  // Two clients, disjoint key ranges, concurrent MultiPut waves through the
  // same far directory — then each side batch-reads the other's range.
  // Exercises the engines under real thread interleavings (sanitizer runs).
  TestEnv env(SmallFabric(4, 32ull << 20));
  auto& client_a = env.NewClient();
  auto& client_b = env.NewClient();
  ShardedMap::Options options;
  options.num_shards = 4;
  options.shard.buckets_per_table = 128;
  auto map_a = ShardedMap::Create(&client_a, &env.alloc(), options);
  ASSERT_TRUE(map_a.ok());
  auto map_b = ShardedMap::Attach(&client_b, &env.alloc(),
                                  map_a->directory());
  ASSERT_TRUE(map_b.ok());

  constexpr uint64_t kPerWriter = 600;
  const auto writer = [](ShardedMap* map, uint64_t base) {
    std::vector<uint64_t> keys;
    std::vector<uint64_t> values;
    for (uint64_t k = base; k < base + kPerWriter; ++k) {
      keys.push_back(k);
      values.push_back(k * 3);
      if (keys.size() == 64) {
        ASSERT_TRUE(map->MultiPut(keys, values).ok());
        keys.clear();
        values.clear();
      }
    }
    if (!keys.empty()) {
      ASSERT_TRUE(map->MultiPut(keys, values).ok());
    }
  };
  std::thread ta(writer, &*map_a, 1);
  std::thread tb(writer, &*map_b, 1 + kPerWriter);
  ta.join();
  tb.join();

  const auto check = [](ShardedMap* map, uint64_t base) {
    std::vector<uint64_t> keys;
    for (uint64_t k = base; k < base + kPerWriter; ++k) {
      keys.push_back(k);
    }
    auto results = map->MultiGet(keys);
    for (size_t i = 0; i < keys.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << "key " << keys[i];
      EXPECT_EQ(*results[i], keys[i] * 3);
    }
  };
  std::thread ra(check, &*map_a, 1 + kPerWriter);  // A reads B's range
  std::thread rb(check, &*map_b, 1);               // B reads A's range
  ra.join();
  rb.join();
}

}  // namespace
}  // namespace fmds
