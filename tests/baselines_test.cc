#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "src/baselines/btree.h"
#include "src/common/histogram.h"
#include "src/baselines/chained_hash.h"
#include "src/baselines/linked_list.h"
#include "src/baselines/neighborhood_hash.h"
#include "src/baselines/simple_queues.h"
#include "src/baselines/skip_list.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

FabricOptions BigFabric() { return SmallFabric(1, 256ull << 20); }

// ------------------------------ ChainedHash -------------------------------

TEST(ChainedHashTest, PutGetRemove) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  ChainedHash::Options options;
  options.buckets = 64;
  auto table = ChainedHash::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->Get(1).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(table->Put(1, 10).ok());
  ASSERT_TRUE(table->Put(2, 20).ok());
  EXPECT_EQ(*table->Get(1), 10u);
  EXPECT_EQ(*table->Get(2), 20u);
  ASSERT_TRUE(table->Remove(1).ok());
  EXPECT_EQ(table->Get(1).status().code(), StatusCode::kNotFound);
}

TEST(ChainedHashTest, LookupCostsAtLeastTwoWithoutIndirection) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  ChainedHash::Options options;
  options.buckets = 4096;
  auto table = ChainedHash::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(table->Put(5, 50).ok());
  const uint64_t before = client.stats().far_ops;
  EXPECT_EQ(*table->Get(5), 50u);
  EXPECT_EQ(client.stats().far_ops - before, 2u)
      << "bucket word + item = two round trips with today's verbs";
}

TEST(ChainedHashTest, IndirectLookupIsOneAccess) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  ChainedHash::Options options;
  options.buckets = 4096;
  options.use_indirect = true;
  auto table = ChainedHash::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(table->Put(5, 50).ok());
  const uint64_t before = client.stats().far_ops;
  EXPECT_EQ(*table->Get(5), 50u);
  EXPECT_EQ(client.stats().far_ops - before, 1u);
}

TEST(ChainedHashTest, ChainsGrowWithLoad) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  ChainedHash::Options options;
  options.buckets = 16;  // forced collisions
  auto table = ChainedHash::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(table.ok());
  for (uint64_t k = 1; k <= 256; ++k) {
    ASSERT_TRUE(table->Put(k, k).ok());
  }
  for (uint64_t k = 1; k <= 256; ++k) {
    EXPECT_EQ(*table->Get(k), k);
  }
  EXPECT_GT(table->observed_chain_length(), 2.0)
      << "fixed buckets at 16x load must chain";
}

TEST(ChainedHashTest, MatchesReferenceUnderMixedOps) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  ChainedHash::Options options;
  options.buckets = 128;
  auto table = ChainedHash::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(table.ok());
  std::map<uint64_t, uint64_t> reference;
  Rng rng(17);
  for (int op = 0; op < 2000; ++op) {
    const uint64_t key = rng.NextInRange(1, 200);
    if (rng.NextBool(0.7)) {
      const uint64_t value = rng.Next() | 1;
      ASSERT_TRUE(table->Put(key, value).ok());
      reference[key] = value;
    } else {
      ASSERT_TRUE(table->Remove(key).ok());
      reference.erase(key);
    }
  }
  for (uint64_t key = 1; key <= 200; ++key) {
    auto it = reference.find(key);
    auto got = table->Get(key);
    if (it == reference.end()) {
      EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
    } else {
      EXPECT_EQ(*got, it->second);
    }
  }
}

// ---------------------------- NeighborhoodHash -----------------------------

TEST(NeighborhoodHashTest, BasicOps) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  NeighborhoodHash::Options options;
  options.buckets = 1024;
  auto table = NeighborhoodHash::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(table->Put(3, 30).ok());
  EXPECT_EQ(*table->Get(3), 30u);
  ASSERT_TRUE(table->Put(3, 31).ok());  // in-place update
  EXPECT_EQ(*table->Get(3), 31u);
  ASSERT_TRUE(table->Remove(3).ok());
  EXPECT_EQ(table->Get(3).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(table->Put(0, 1).ok());  // key 0 reserved
}

TEST(NeighborhoodHashTest, LookupIsOneAccessButMoreBytes) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  NeighborhoodHash::Options options;
  options.buckets = 1024;
  options.neighborhood = 8;
  auto table = NeighborhoodHash::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(table->Put(9, 90).ok());
  const auto before = client.stats();
  EXPECT_EQ(*table->Get(9), 90u);
  const auto delta = client.stats().Delta(before);
  EXPECT_EQ(delta.far_ops, 1u);
  EXPECT_EQ(delta.bytes_read, 8u * 16u)
      << "FaRM-style inlining: one access, a whole neighborhood of bytes";
}

TEST(NeighborhoodHashTest, FillsNeighborhoodThenFails) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  NeighborhoodHash::Options options;
  options.buckets = 1;  // everything collides
  options.neighborhood = 4;
  auto table = NeighborhoodHash::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(table.ok());
  uint64_t inserted = 0;
  for (uint64_t k = 1; k <= 10; ++k) {
    if (table->Put(k, k).ok()) {
      ++inserted;
    }
  }
  EXPECT_EQ(inserted, 4u);
}

TEST(NeighborhoodHashTest, ManyKeysAtModerateLoad) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  NeighborhoodHash::Options options;
  options.buckets = 4096;
  auto table = NeighborhoodHash::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(table.ok());
  for (uint64_t k = 1; k <= 1000; ++k) {
    ASSERT_TRUE(table->Put(k, k * 7).ok()) << "key " << k;
  }
  for (uint64_t k = 1; k <= 1000; ++k) {
    EXPECT_EQ(*table->Get(k), k * 7);
  }
}

// -------------------------------- FarBTree ---------------------------------

class FarBTreeParamTest : public ::testing::TestWithParam<bool> {};

TEST_P(FarBTreeParamTest, SortedAndRandomInserts) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  FarBTree::Options options;
  options.fanout = 8;
  options.cache_internal = GetParam();
  auto tree = FarBTree::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(tree.ok());
  // Sorted.
  for (uint64_t k = 1; k <= 500; ++k) {
    ASSERT_TRUE(tree->Put(k, k * 2).ok()) << k;
  }
  // Random interleave.
  Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    const uint64_t k = rng.NextInRange(1000, 2000);
    ASSERT_TRUE(tree->Put(k, k * 2).ok());
  }
  for (uint64_t k = 1; k <= 500; ++k) {
    ASSERT_EQ(*tree->Get(k), k * 2) << k;
  }
  EXPECT_EQ(tree->Get(700).status().code(), StatusCode::kNotFound);
  EXPECT_GT(tree->height(), 1u);
}

INSTANTIATE_TEST_SUITE_P(CacheModes, FarBTreeParamTest, ::testing::Bool());

TEST(FarBTreeTest, LookupCostGrowsWithHeightUncached) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  FarBTree::Options options;
  options.fanout = 4;
  auto tree = FarBTree::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(tree.ok());
  for (uint64_t k = 1; k <= 1000; ++k) {
    ASSERT_TRUE(tree->Put(k, k).ok());
  }
  ASSERT_TRUE(tree->Get(555).ok());
  // O(log n): root-pointer read + one node per level.
  EXPECT_GE(tree->last_get_far_accesses(), tree->height());
  EXPECT_GT(tree->height(), 3u);
}

TEST(FarBTreeTest, CachedLookupsApproachOneAccess) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  FarBTree::Options options;
  options.fanout = 8;
  options.cache_internal = true;
  auto tree = FarBTree::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(tree.ok());
  for (uint64_t k = 1; k <= 2000; ++k) {
    ASSERT_TRUE(tree->Put(k, k).ok());
  }
  // Warm the internal-node cache.
  for (uint64_t k = 1; k <= 2000; k += 10) {
    ASSERT_TRUE(tree->Get(k).ok());
  }
  ASSERT_TRUE(tree->Get(1001).ok());
  // root-ptr word + leaf (internals cached).
  EXPECT_LE(tree->last_get_far_accesses(), 2u);
  EXPECT_GT(tree->cache_bytes(), 0u)
      << "the 1-access B-tree pays with client cache";
}

TEST(FarBTreeTest, RemoveIsLazyButCorrect) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  FarBTree::Options options;
  options.fanout = 8;
  auto tree = FarBTree::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(tree.ok());
  for (uint64_t k = 1; k <= 100; ++k) {
    ASSERT_TRUE(tree->Put(k, k).ok());
  }
  ASSERT_TRUE(tree->Remove(50).ok());
  EXPECT_EQ(tree->Get(50).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(tree->Remove(50).code(), StatusCode::kNotFound);
  EXPECT_EQ(*tree->Get(49), 49u);
  EXPECT_EQ(*tree->Get(51), 51u);
}

// ------------------------------ FarLinkedList ------------------------------

TEST(FarLinkedListTest, FindWalksOnePerNode) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  auto list = FarLinkedList::Create(&client, &env.alloc());
  ASSERT_TRUE(list.ok());
  for (uint64_t k = 1; k <= 100; ++k) {
    ASSERT_TRUE(list->PushFront(k, k * 5).ok());
  }
  EXPECT_EQ(*list->Find(100), 500u);  // head: cheap
  EXPECT_LE(list->last_find_far_accesses(), 2u);
  EXPECT_EQ(*list->Find(1), 5u);  // tail: O(n)
  EXPECT_GE(list->last_find_far_accesses(), 100u);
  EXPECT_EQ(list->Find(999).status().code(), StatusCode::kNotFound);
}

// ------------------------------- FarSkipList -------------------------------

TEST(FarSkipListTest, SortedSemantics) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  auto list = FarSkipList::Create(&client, &env.alloc());
  ASSERT_TRUE(list.ok());
  Rng rng(31);
  std::map<uint64_t, uint64_t> reference;
  for (int i = 0; i < 500; ++i) {
    const uint64_t k = rng.NextInRange(1, 10000);
    const uint64_t v = rng.Next() | 1;
    ASSERT_TRUE(list->Put(k, v).ok());
    reference[k] = v;
  }
  for (const auto& [k, v] : reference) {
    ASSERT_EQ(*list->Get(k), v) << k;
  }
  EXPECT_EQ(list->Get(10001).status().code(), StatusCode::kNotFound);
}

TEST(FarSkipListTest, LookupIsLogarithmicish) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  auto list = FarSkipList::Create(&client, &env.alloc());
  ASSERT_TRUE(list.ok());
  for (uint64_t k = 1; k <= 2000; ++k) {
    ASSERT_TRUE(list->Put(k, k).ok());
  }
  RunningStat accesses;
  Rng rng(37);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(list->Get(rng.NextInRange(1, 2000)).ok());
    accesses.Record(static_cast<double>(list->last_get_far_accesses()));
  }
  EXPECT_GT(accesses.mean(), 4.0);   // clearly more than O(1)
  EXPECT_LT(accesses.mean(), 80.0);  // clearly less than O(n)
}

// ------------------------------ Simple queues ------------------------------

TEST(LockFarQueueTest, FifoAndFullEmpty) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  auto queue = LockFarQueue::Create(&client, &env.alloc(), 8);
  ASSERT_TRUE(queue.ok());
  EXPECT_EQ(queue->Dequeue().status().code(), StatusCode::kNotFound);
  for (uint64_t v = 1; v <= 8; ++v) {
    ASSERT_TRUE(queue->Enqueue(v).ok());
  }
  EXPECT_EQ(queue->Enqueue(9).code(), StatusCode::kResourceExhausted);
  for (uint64_t v = 1; v <= 8; ++v) {
    EXPECT_EQ(*queue->Dequeue(), v);
  }
}

TEST(LockFarQueueTest, CostsManyFarAccesses) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  auto queue = LockFarQueue::Create(&client, &env.alloc(), 64);
  ASSERT_TRUE(queue.ok());
  const uint64_t before = client.stats().far_ops;
  ASSERT_TRUE(queue->Enqueue(1).ok());
  EXPECT_GE(client.stats().far_ops - before, 5u)
      << "lock + pointer reads + slot + pointer write + unlock";
}

TEST(TicketFarQueueTest, FifoAndTwoAccessFastPath) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  auto queue = TicketFarQueue::Create(&client, &env.alloc(), 64);
  ASSERT_TRUE(queue.ok());
  for (uint64_t v = 1; v <= 10; ++v) {
    ASSERT_TRUE(queue->Enqueue(v).ok());
  }
  const uint64_t before = client.stats().far_ops;
  ASSERT_TRUE(queue->Enqueue(11).ok());
  EXPECT_EQ(client.stats().far_ops - before, 2u)
      << "today's atomics: FAA + slot write";
  for (uint64_t v = 1; v <= 11; ++v) {
    EXPECT_EQ(*queue->Dequeue(), v);
  }
  EXPECT_EQ(queue->Dequeue().status().code(), StatusCode::kNotFound);
}

TEST(TicketFarQueueTest, MpmcExactlyOnce) {
  TestEnv env(BigFabric());
  auto& creator = env.NewClient();
  // The ticket queue has no flow control (that's the baseline's weakness):
  // size the ring for the full load so laps cannot overwrite live slots.
  auto queue = TicketFarQueue::Create(&creator, &env.alloc(), 4096);
  ASSERT_TRUE(queue.ok());
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr uint64_t kPerProducer = 1000;
  const uint64_t total = kProducers * kPerProducer;
  std::vector<std::atomic<int>> seen(total + 1);
  for (auto& s : seen) {
    s.store(0);
  }
  std::atomic<uint64_t> consumed{0};
  std::vector<FarClient*> clients;
  for (int t = 0; t < kProducers + kConsumers; ++t) {
    clients.push_back(&env.NewClient());
  }
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      auto handle = TicketFarQueue::Attach(clients[p], queue->header());
      ASSERT_TRUE(handle.ok());
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(handle->Enqueue(p * kPerProducer + i + 1).ok());
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      auto handle =
          TicketFarQueue::Attach(clients[kProducers + c], queue->header());
      ASSERT_TRUE(handle.ok());
      while (consumed.load() < total) {
        auto value = handle->Dequeue();
        if (value.ok()) {
          seen[*value].fetch_add(1);
          consumed.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (uint64_t v = 1; v <= total; ++v) {
    ASSERT_EQ(seen[v].load(), 1) << "value " << v;
  }
}

}  // namespace
}  // namespace fmds
