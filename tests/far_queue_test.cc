#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "src/core/far_queue.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

FarQueue::Options SmallQueue(uint64_t capacity = 64, uint64_t clients = 4) {
  FarQueue::Options options;
  options.capacity = capacity;
  options.max_clients = clients;
  return options;
}

TEST(FarQueueTest, FifoSingleClient) {
  TestEnv env;
  auto& client = env.NewClient();
  auto queue = FarQueue::Create(&client, &env.alloc(), SmallQueue());
  ASSERT_TRUE(queue.ok());
  for (uint64_t v = 1; v <= 10; ++v) {
    ASSERT_TRUE(queue->Enqueue(v).ok());
  }
  EXPECT_EQ(*queue->SizeSlow(), 10u);
  for (uint64_t v = 1; v <= 10; ++v) {
    EXPECT_EQ(*queue->Dequeue(), v);
  }
  EXPECT_EQ(queue->Dequeue().status().code(), StatusCode::kNotFound);
}

TEST(FarQueueTest, RejectsZeroValues) {
  TestEnv env;
  auto& client = env.NewClient();
  auto queue = FarQueue::Create(&client, &env.alloc(), SmallQueue());
  ASSERT_TRUE(queue.ok());
  EXPECT_FALSE(queue->Enqueue(0).ok());
}

TEST(FarQueueTest, FastPathIsOneFarAccess) {
  TestEnv env;
  auto& client = env.NewClient();
  auto queue = FarQueue::Create(&client, &env.alloc(),
                                SmallQueue(/*capacity=*/1024));
  ASSERT_TRUE(queue.ok());
  // Steady state away from boundaries.
  for (uint64_t v = 1; v <= 20; ++v) {
    ASSERT_TRUE(queue->Enqueue(v).ok());
  }
  const auto before = client.stats();
  ASSERT_TRUE(queue->Enqueue(99).ok());
  auto delta = client.stats().Delta(before);
  EXPECT_EQ(delta.far_ops, 1u) << "§5.3: enqueue = one far access (saai)";
  const auto before_deq = client.stats();
  ASSERT_TRUE(queue->Dequeue().ok());
  delta = client.stats().Delta(before_deq);
  EXPECT_EQ(delta.far_ops, 1u) << "§5.3: dequeue = one far access (faai)";
  EXPECT_GE(delta.background_ops, 1u);  // slot reset off the critical path
}

TEST(FarQueueTest, WrapAroundManyLaps) {
  TestEnv env;
  auto& client = env.NewClient();
  auto queue = FarQueue::Create(&client, &env.alloc(),
                                SmallQueue(/*capacity=*/32, /*clients=*/2));
  ASSERT_TRUE(queue.ok());
  // Push the pointers through several laps of the 32-slot ring.
  uint64_t next_in = 1;
  uint64_t next_out = 1;
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(queue->Enqueue(next_in++).ok());
    }
    for (int i = 0; i < 8; ++i) {
      ASSERT_EQ(*queue->Dequeue(), next_out++);
    }
  }
  EXPECT_GT(queue->op_stats().wraps, 0u) << "laps must have wrapped";
  EXPECT_EQ(queue->Dequeue().status().code(), StatusCode::kNotFound);
}

TEST(FarQueueTest, ConservativeFullDetection) {
  TestEnv env;
  auto& client = env.NewClient();
  auto queue = FarQueue::Create(&client, &env.alloc(),
                                SmallQueue(/*capacity=*/64, /*clients=*/4));
  ASSERT_TRUE(queue.ok());
  uint64_t accepted = 0;
  for (uint64_t v = 1; v <= 64; ++v) {
    if (!queue->Enqueue(v).ok()) {
      break;
    }
    ++accepted;
  }
  // The margin reserves up to max_clients+1 slots; everything else fits.
  EXPECT_GE(accepted, 64u - 5u);
  EXPECT_LT(accepted, 64u);
  // Space reappears after consuming.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(queue->Dequeue().ok());
  }
  EXPECT_TRUE(queue->Enqueue(1000).ok());
}

TEST(FarQueueTest, AttachSharesState) {
  TestEnv env;
  auto& a = env.NewClient();
  auto& b = env.NewClient();
  auto qa = FarQueue::Create(&a, &env.alloc(), SmallQueue());
  ASSERT_TRUE(qa.ok());
  auto qb = FarQueue::Attach(&b, qa->header());
  ASSERT_TRUE(qb.ok());
  ASSERT_TRUE(qa->Enqueue(5).ok());
  EXPECT_EQ(*qb->Dequeue(), 5u);
}

// MPMC stress: every enqueued value is dequeued exactly once, across laps.
class FarQueueMpmcTest
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(FarQueueMpmcTest, NoLossNoDuplication) {
  const auto [producers, consumers, capacity] = GetParam();
  TestEnv env;
  auto& creator = env.NewClient();
  FarQueue::Options options;
  options.capacity = capacity;
  options.max_clients = producers + consumers;
  auto queue = FarQueue::Create(&creator, &env.alloc(), options);
  ASSERT_TRUE(queue.ok());
  constexpr uint64_t kPerProducer = 2000;
  const uint64_t total = producers * kPerProducer;
  std::vector<std::atomic<int>> seen(total + 1);
  for (auto& s : seen) {
    s.store(0);
  }
  std::atomic<uint64_t> consumed{0};
  std::vector<FarClient*> clients;
  for (int t = 0; t < producers + consumers; ++t) {
    clients.push_back(&env.NewClient());
  }
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      auto handle = FarQueue::Attach(clients[p], queue->header());
      ASSERT_TRUE(handle.ok());
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        const uint64_t value = p * kPerProducer + i + 1;
        while (true) {
          Status status = handle->Enqueue(value);
          if (status.ok()) {
            break;
          }
          ASSERT_EQ(status.code(), StatusCode::kResourceExhausted)
              << status.ToString();
          std::this_thread::yield();
        }
      }
    });
  }
  for (int c = 0; c < consumers; ++c) {
    threads.emplace_back([&, c] {
      auto handle =
          FarQueue::Attach(clients[producers + c], queue->header());
      ASSERT_TRUE(handle.ok());
      while (consumed.load() < total) {
        auto value = handle->Dequeue();
        if (value.ok()) {
          ASSERT_GE(*value, 1u);
          ASSERT_LE(*value, total);
          seen[*value].fetch_add(1);
          consumed.fetch_add(1);
        } else {
          ASSERT_EQ(value.status().code(), StatusCode::kNotFound)
              << value.status().ToString();
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (uint64_t v = 1; v <= total; ++v) {
    ASSERT_EQ(seen[v].load(), 1) << "value " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FarQueueMpmcTest,
    ::testing::Values(std::make_tuple(1, 1, uint64_t{64}),
                      std::make_tuple(2, 2, uint64_t{64}),
                      std::make_tuple(4, 4, uint64_t{256}),
                      std::make_tuple(4, 1, uint64_t{1024}),
                      std::make_tuple(1, 4, uint64_t{256})));

TEST(FarQueueTest, PerClientFifoOrderPreserved) {
  // With one producer and one consumer, strict FIFO must hold even across
  // wraps and slack landings.
  TestEnv env;
  auto& producer_client = env.NewClient();
  auto& consumer_client = env.NewClient();
  auto queue = FarQueue::Create(&producer_client, &env.alloc(),
                                SmallQueue(/*capacity=*/32, /*clients=*/2));
  ASSERT_TRUE(queue.ok());
  auto consumer = FarQueue::Attach(&consumer_client, queue->header());
  ASSERT_TRUE(consumer.ok());
  constexpr uint64_t kTotal = 5000;
  std::thread producer([&] {
    for (uint64_t v = 1; v <= kTotal; ++v) {
      while (!queue->Enqueue(v).ok()) {
        std::this_thread::yield();
      }
    }
  });
  uint64_t expected = 1;
  while (expected <= kTotal) {
    auto value = consumer->Dequeue();
    if (value.ok()) {
      ASSERT_EQ(*value, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
}

TEST(FarQueueWatchTest, IdlePollCostsZeroFarAccesses) {
  TestEnv env;
  auto& producer_client = env.NewClient();
  auto& consumer_client = env.NewClient();
  FarQueue::Options options = SmallQueue(/*capacity=*/256);
  options.watch_estimates = true;
  auto producer = FarQueue::Create(&producer_client, &env.alloc(), options);
  ASSERT_TRUE(producer.ok());
  auto consumer =
      FarQueue::Attach(&consumer_client, producer->header(), options);
  ASSERT_TRUE(consumer.ok());

  // Drain to a genuinely idle queue first.
  EXPECT_EQ(consumer->Dequeue().status().code(), StatusCode::kNotFound);
  const uint64_t before = consumer_client.stats().far_ops;
  for (int poll = 0; poll < 100; ++poll) {
    EXPECT_EQ(consumer->Dequeue().status().code(), StatusCode::kNotFound);
  }
  EXPECT_EQ(consumer_client.stats().far_ops - before, 0u)
      << "watched pointers: idle polls never touch the fabric";

  // A push wakes the watch (notification), not a poll loop of reads.
  ASSERT_TRUE(producer->Enqueue(77).ok());
  auto got = consumer->Dequeue();
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_EQ(*got, 77u);
}

TEST(FarQueueWatchTest, WatchedFifoThroughWraps) {
  TestEnv env;
  auto& client = env.NewClient();
  FarQueue::Options options = SmallQueue(/*capacity=*/64);
  options.watch_estimates = true;
  auto queue = FarQueue::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(queue.ok());
  // Several laps at steady ~30 occupancy: fixups force-write the
  // pointers; the watch must track the lap subtractions without
  // desyncing.
  uint64_t next_out = 1;
  for (uint64_t v = 1; v <= 400; ++v) {
    ASSERT_TRUE(queue->Enqueue(v).ok()) << "at " << v;
    if (v > 30) {
      auto got = queue->Dequeue();
      ASSERT_TRUE(got.ok()) << got.status().message();
      EXPECT_EQ(*got, next_out);
      ++next_out;
    }
  }
  while (next_out <= 400) {
    auto got = queue->Dequeue();
    ASSERT_TRUE(got.ok()) << got.status().message();
    EXPECT_EQ(*got, next_out);
    ++next_out;
  }
  EXPECT_EQ(queue->Dequeue().status().code(), StatusCode::kNotFound);
  EXPECT_GT(queue->op_stats().wraps, 0u);
}

TEST(FarQueueWatchTest, ProducerConsumerAcrossThreads) {
  TestEnv env;
  auto& producer_client = env.NewClient();
  auto& consumer_client = env.NewClient();
  FarQueue::Options options = SmallQueue(/*capacity=*/128, /*clients=*/2);
  options.watch_estimates = true;
  auto owner = FarQueue::Create(&producer_client, &env.alloc(), options);
  ASSERT_TRUE(owner.ok());
  auto consumer =
      FarQueue::Attach(&consumer_client, owner->header(), options);
  ASSERT_TRUE(consumer.ok());

  constexpr uint64_t kTotal = 2000;
  std::thread producer([&] {
    for (uint64_t v = 1; v <= kTotal; ++v) {
      while (!owner->Enqueue(v).ok()) {
        std::this_thread::yield();
      }
    }
  });
  uint64_t expected = 1;
  while (expected <= kTotal) {
    auto value = consumer->Dequeue();
    if (value.ok()) {
      ASSERT_EQ(*value, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
}

}  // namespace
}  // namespace fmds
