// Flight-recorder tests: scoped label stack, per-op-kind histogram
// attribution, TraceRing wraparound, Chrome-trace JSON well-formedness,
// and the sync-vs-batched invariant that per-op latencies sum exactly to
// the simulated clock delta.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/alloc/far_allocator.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/recorder.h"
#include "src/obs/trace_export.h"
#include "src/obs/trace_ring.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

// ---------------------------- label stack ----------------------------

TEST(OpLabelTest, PushPopNesting) {
  OpRecorder recorder(1);
  recorder.set_options(ObsOptions::HistogramsOnly());
  EXPECT_EQ(recorder.label_depth(), 0u);
  EXPECT_EQ(recorder.current_label(), "");
  recorder.PushLabel("outer");
  recorder.PushLabel("inner");
  EXPECT_EQ(recorder.label_depth(), 2u);
  EXPECT_EQ(recorder.current_label(), "inner");
  recorder.PopLabel();
  EXPECT_EQ(recorder.current_label(), "outer");
  recorder.PopLabel();
  EXPECT_EQ(recorder.label_depth(), 0u);
}

TEST(OpLabelTest, ScopedLabelIsRaii) {
  OpRecorder recorder(1);
  recorder.set_options(ObsOptions::HistogramsOnly());
  {
    ScopedOpLabel outer(&recorder, "httree.multiget");
    EXPECT_EQ(recorder.current_label(), "httree.multiget");
    {
      ScopedOpLabel inner(&recorder, "httree.get");
      EXPECT_EQ(recorder.current_label(), "httree.get");
    }
    EXPECT_EQ(recorder.current_label(), "httree.multiget");
  }
  EXPECT_EQ(recorder.label_depth(), 0u);
}

TEST(OpLabelTest, DisabledRecorderIsNoOp) {
  OpRecorder recorder(1);  // default options: everything off
  {
    ScopedOpLabel label(&recorder, "should.not.intern");
    EXPECT_EQ(recorder.label_depth(), 0u);
  }
  // Only the pre-interned unlabeled bucket exists.
  EXPECT_EQ(recorder.label_count(), 1u);
  recorder.RecordOp(FarOpKind::kRead, 0, 0, 64, 0, 100, true);
  EXPECT_EQ(recorder.kind_histogram(FarOpKind::kRead).count(), 0u);
}

// ----------------------- histogram attribution -----------------------

TEST(ObsClientTest, KindHistogramsMatchClockDelta) {
  TestEnv env(SmallFabric());
  FarClient& client = env.NewClient();
  client.EnableObs(ObsOptions::HistogramsOnly());
  const FarAddr addr = 0;

  const uint64_t t0 = client.clock().now_ns();
  ASSERT_TRUE(client.WriteWord(addr, 7).ok());
  ASSERT_TRUE(client.ReadWord(addr).ok());
  ASSERT_TRUE(client.FetchAdd(addr, 1).ok());
  ASSERT_TRUE(client.CompareSwap(addr, 8, 9).ok());
  const uint64_t elapsed = client.clock().now_ns() - t0;

  const OpRecorder& recorder = client.recorder();
  EXPECT_EQ(recorder.kind_histogram(FarOpKind::kWriteWord).count(), 1u);
  EXPECT_EQ(recorder.kind_histogram(FarOpKind::kReadWord).count(), 1u);
  EXPECT_EQ(recorder.kind_histogram(FarOpKind::kFetchAdd).count(), 1u);
  EXPECT_EQ(recorder.kind_histogram(FarOpKind::kCas).count(), 1u);
  uint64_t recorded = 0;
  for (size_t k = 0; k < kFarOpKindCount; ++k) {
    recorded += recorder.kind_histogram(static_cast<FarOpKind>(k)).sum();
  }
  // Synchronous path: every op's recorded latency is exactly what it
  // charged the simulated clock.
  EXPECT_EQ(recorded, elapsed);
}

TEST(ObsClientTest, LabelAttributionAndNodeTraffic) {
  TestEnv env(SmallFabric());
  FarClient& client = env.NewClient();
  client.EnableObs(ObsOptions::HistogramsOnly());
  {
    ScopedOpLabel label(&client.recorder(), "test.op");
    ASSERT_TRUE(client.WriteWord(0, 1).ok());
    ASSERT_TRUE(client.ReadWord(0).ok());
  }
  ASSERT_TRUE(client.ReadWord(0).ok());  // unlabeled

  const OpRecorder& recorder = client.recorder();
  int label_id = -1;
  for (size_t id = 0; id < recorder.label_count(); ++id) {
    if (recorder.label_name(static_cast<uint32_t>(id)) == "test.op") {
      label_id = static_cast<int>(id);
    }
  }
  ASSERT_GE(label_id, 0);
  EXPECT_EQ(recorder.label_histograms()[label_id].count(), 2u);
  EXPECT_EQ(recorder.label_traffic()[label_id].ops, 2u);
  EXPECT_EQ(recorder.label_traffic()[label_id].bytes, 2 * kWordSize);
  EXPECT_EQ(recorder.label_histograms()[0].count(), 1u);  // unlabeled bucket
  // Single-node fabric: all traffic lands on node 0.
  ASSERT_EQ(recorder.node_traffic().size(), 1u);
  EXPECT_EQ(recorder.node_traffic()[0].ops, 3u);

  // Fleet roll-up sees the same label.
  MetricsRegistry registry;
  registry.Absorb(recorder);
  ASSERT_TRUE(registry.labels().count("test.op"));
  EXPECT_EQ(registry.labels().at("test.op").ops, 2u);
}

// --------------------------- trace ring ------------------------------

TEST(TraceRingTest, WraparoundKeepsNewestWindow) {
  TraceRing ring(4);
  for (uint64_t i = 0; i < 6; ++i) {
    TraceEvent event;
    event.start_ns = i;
    ring.Push(event);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.recorded(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);
  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].start_ns, i + 2);  // oldest two overwritten
  }
}

TEST(TraceRingTest, ZeroCapacityDropsEverything) {
  TraceRing ring(0);
  ring.Push(TraceEvent{});
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.recorded(), 0u);
}

// --------------------------- trace export ----------------------------

TEST(TraceExportTest, ChromeTraceHasRequiredKeysOnEveryEvent) {
  TestEnv env(SmallFabric());
  FarClient& client = env.NewClient();
  client.EnableObs(ObsOptions::All(128));
  {
    ScopedOpLabel label(&client.recorder(), "test.sweep");
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(client.WriteWord(i * kWordSize, i + 1).ok());
    }
    client.PostReadWord(0);
    client.PostReadWord(kWordSize);
    ASSERT_TRUE(client.WaitAll().ok());
  }

  MetricsRegistry registry;
  registry.Absorb(client.recorder());
  std::ostringstream out;
  WriteChromeTrace(out, registry);
  const std::string json = out.str();

  // Envelope.
  EXPECT_EQ(json.rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ns\""), std::string::npos);
  // The exporter writes one event object per line; every one must carry
  // the Chrome trace-event required keys.
  std::istringstream lines(json);
  std::string line;
  int events = 0;
  int batch_spans = 0;
  while (std::getline(lines, line)) {
    if (line.find('{') == std::string::npos ||
        line.find("traceEvents") != std::string::npos) {
      continue;
    }
    ++events;
    for (const char* key : {"\"ph\":", "\"ts\":", "\"pid\":", "\"tid\":",
                            "\"name\":"}) {
      EXPECT_NE(line.find(key), std::string::npos)
          << "event missing " << key << ": " << line;
    }
    if (line.find("batch#") != std::string::npos) {
      ++batch_spans;
    }
  }
  // 2 metadata + 4 sync ops + 1 batch span + 2 batched ops.
  EXPECT_EQ(events, 9);
  EXPECT_EQ(batch_spans, 1);
}

// ----------------------- sync vs batched clock -----------------------

TEST(ObsClientTest, BatchedLatencySharesSumToClockDelta) {
  TestEnv env(SmallFabric());
  FarClient& client = env.NewClient();
  client.EnableObs(ObsOptions::All(1024));

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client.WriteWord(i * kWordSize, i + 100).ok());
  }
  client.recorder().Reset();

  const uint64_t t0 = client.clock().now_ns();
  for (int i = 0; i < 8; ++i) {
    client.PostReadWord(i * kWordSize);
  }
  // Flush, not WaitAll: WaitAll charges an extra near access for the
  // completion-queue drain, which is not fabric time.
  ASSERT_TRUE(client.Flush().ok());
  const uint64_t elapsed = client.clock().now_ns() - t0;
  ASSERT_TRUE(client.WaitAll().ok());
  ASSERT_GT(elapsed, 0u);

  const OpRecorder& recorder = client.recorder();
  // The batch span covers the doorbell's whole simulated wait...
  EXPECT_EQ(recorder.kind_histogram(FarOpKind::kBatch).count(), 1u);
  EXPECT_EQ(recorder.kind_histogram(FarOpKind::kBatch).sum(), elapsed);
  // ...and the per-op shares tile it exactly (remainder on the first op).
  EXPECT_EQ(recorder.kind_histogram(FarOpKind::kReadWord).count(), 8u);
  EXPECT_EQ(recorder.kind_histogram(FarOpKind::kReadWord).sum(), elapsed);

  // Trace nesting: every batched op span lies inside the batch span.
  uint64_t batch_start = 0;
  uint64_t batch_end = 0;
  std::vector<TraceEvent> events = recorder.trace().Snapshot();
  for (const TraceEvent& event : events) {
    if (event.kind == FarOpKind::kBatch) {
      batch_start = event.start_ns;
      batch_end = event.start_ns + event.latency_ns;
    }
  }
  ASSERT_GT(batch_end, batch_start);
  for (const TraceEvent& event : events) {
    if (event.kind == FarOpKind::kReadWord) {
      EXPECT_GE(event.start_ns, batch_start);
      EXPECT_LE(event.start_ns + event.latency_ns, batch_end);
      EXPECT_GT(event.batch_id, 0u);
    }
  }
}

TEST(ObsClientTest, DisabledObsRecordsNothing) {
  TestEnv env(SmallFabric());
  FarClient& client = env.NewClient();  // obs off by default
  ASSERT_TRUE(client.WriteWord(0, 1).ok());
  ASSERT_TRUE(client.ReadWord(0).ok());
  const OpRecorder& recorder = client.recorder();
  EXPECT_FALSE(recorder.enabled());
  for (size_t k = 0; k < kFarOpKindCount; ++k) {
    EXPECT_EQ(recorder.kind_histogram(static_cast<FarOpKind>(k)).count(), 0u);
  }
  EXPECT_EQ(recorder.trace().recorded(), 0u);
  EXPECT_TRUE(recorder.node_traffic().empty());
}

}  // namespace
}  // namespace fmds
