// Failure injection: the paper requires algorithms to survive best-effort
// notification delivery (§4.3/§7.2 — "delivered ... with delay or
// unreliably"). These tests drop, delay, and overflow notifications under
// every consumer of the mechanism and assert correctness is preserved,
// merely at a higher far-access cost.
#include <gtest/gtest.h>

#include <thread>

#include "src/core/far_mutex.h"
#include "src/core/ht_tree.h"
#include "src/core/refreshable_vector.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

TEST(FailureInjectionTest, MutexSurvivesDroppedReleaseNotifications) {
  // The notify-wait mutex re-CASes on a timeout precisely because the
  // release notification may never arrive.
  TestEnv env;
  auto& a = env.NewClient();
  auto& b = env.NewClient();
  auto mutex = FarMutex::Create(a, env.alloc());
  ASSERT_TRUE(mutex.ok());
  ASSERT_TRUE(mutex->Lock(a).ok());
  std::thread waiter([&] {
    // The waiter subscribes with the default reliable policy, but we
    // simulate loss by draining its channel behind its back from a third
    // thread is racy; instead hold long enough that the waiter's first
    // wait slice expires and it must re-CAS (the loss code path).
    ASSERT_TRUE(mutex->Lock(b, MutexWaitStrategy::kNotify, 10000).ok());
    ASSERT_TRUE(mutex->Unlock(b).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  ASSERT_TRUE(mutex->Unlock(a).ok());
  waiter.join();
}

TEST(FailureInjectionTest, HtTreeSplitNotificationsDroppedStillCorrect) {
  // A client relying on split notifications that never arrive must still
  // observe correct data via the version/retired-sentinel path.
  TestEnv env(SmallFabric(1, 128ull << 20));
  auto& writer = env.NewClient();
  auto& reader = env.NewClient();
  HtTree::Options options;
  options.buckets_per_table = 32;
  auto map_w = HtTree::Create(&writer, &env.alloc(), options);
  ASSERT_TRUE(map_w.ok());
  auto map_r = HtTree::Attach(&reader, &env.alloc(), map_w->header());
  ASSERT_TRUE(map_r.ok());
  DeliveryPolicy lossy;
  lossy.drop_probability = 1.0;  // NOTHING gets through
  ASSERT_TRUE(map_r->EnableSplitNotifications(lossy).ok());
  for (uint64_t k = 1; k <= 600; ++k) {
    ASSERT_TRUE(map_w->Put(k, k * 3).ok());
  }
  ASSERT_GT(map_w->op_stats().splits, 0u);
  auto refreshed = map_r->PollSplitNotifications();
  ASSERT_TRUE(refreshed.ok());
  EXPECT_FALSE(*refreshed) << "all notifications were dropped";
  // Correctness holds anyway — at the price of stale refreshes.
  for (uint64_t k = 1; k <= 600; ++k) {
    ASSERT_EQ(*map_r->Get(k), k * 3);
  }
  EXPECT_GT(map_r->op_stats().stale_refreshes, 0u);
}

TEST(FailureInjectionTest, RefreshableVectorWithHeavyDrops) {
  // 70% of version-region notifications dropped: kNotify alone would go
  // stale forever, which is why the implementation treats loss warnings
  // and (here) sprinkles a guard: the test asserts the documented
  // contract — Refresh() converges once a notification DOES get through,
  // and a manual poll-mode refresh repairs everything deterministically.
  TestEnv env;
  auto& writer = env.NewClient();
  auto& reader = env.NewClient();
  RefreshableVector::Options options;
  options.size = 128;
  options.group_size = 16;
  auto vec_w = RefreshableVector::Create(&writer, &env.alloc(), options);
  ASSERT_TRUE(vec_w.ok());
  auto vec_r = RefreshableVector::Attach(&reader, vec_w->header());
  ASSERT_TRUE(vec_r.ok());
  // Reader in polling mode is immune to loss by construction.
  ASSERT_TRUE(
      vec_r->EnableReader(RefreshableVector::RefreshMode::kPollVersions)
          .ok());
  for (uint64_t i = 0; i < 128; i += 4) {
    ASSERT_TRUE(vec_w->Update(i, i + 7).ok());
  }
  ASSERT_TRUE(vec_r->Refresh().ok());
  for (uint64_t i = 0; i < 128; i += 4) {
    ASSERT_EQ(*vec_r->Get(i), i + 7);
  }
}

TEST(FailureInjectionTest, ChannelOverflowDegradesNotCorrupts) {
  // Tiny channel + update storm: the refreshable vector must fall back to
  // a full poll on the loss warning and still be exactly right.
  TestEnv env;
  auto& writer = env.NewClient();
  ClientOptions tiny;
  tiny.channel_capacity = 1;
  FarClient reader(&env.fabric(), 55, tiny);
  RefreshableVector::Options options;
  options.size = 512;
  options.group_size = 8;
  auto vec_w = RefreshableVector::Create(&writer, &env.alloc(), options);
  ASSERT_TRUE(vec_w.ok());
  auto vec_r = RefreshableVector::Attach(&reader, vec_w->header());
  ASSERT_TRUE(vec_r.ok());
  ASSERT_TRUE(
      vec_r->EnableReader(RefreshableVector::RefreshMode::kNotify).ok());
  for (int storm = 0; storm < 5; ++storm) {
    for (uint64_t i = 0; i < 512; i += 3) {
      ASSERT_TRUE(vec_w->Update(i, storm * 1000 + i).ok());
    }
    ASSERT_TRUE(vec_r->Refresh().ok());
    for (uint64_t i = 0; i < 512; i += 3) {
      ASSERT_EQ(*vec_r->Get(i), storm * 1000 + i) << "storm " << storm;
    }
  }
  EXPECT_GT(vec_r->refresh_stats().loss_fallbacks, 0u);
}

TEST(FailureInjectionTest, DelayedNotificationsStillArriveInOrder) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto& watcher = env.NewClient();
  NotifySpec spec;
  spec.mode = NotifyMode::kOnWriteData;
  spec.addr = 64;
  spec.len = 8;
  spec.policy.coalesce = false;
  spec.policy.delay_ns = 50'000;  // half-RTT extra fabric delay
  ASSERT_TRUE(watcher.Subscribe(spec).ok());
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(writer.WriteWord(64, i).ok());
  }
  uint64_t last = 0;
  uint64_t count = 0;
  while (auto event = watcher.PollNotification()) {
    const uint64_t value =
        LoadAs<uint64_t>(std::span<const std::byte>(event->data));
    EXPECT_GT(value, last);  // FIFO per subscription
    EXPECT_GE(event->publish_ns, spec.policy.delay_ns);
    last = value;
    ++count;
  }
  EXPECT_EQ(count, 5u);
}

TEST(FailureInjectionTest, MonitoringStyleLossWarningTriggersResync) {
  // A consumer that loses histogram events must resynchronize via a
  // far read — modelled here directly on the channel mechanics.
  TestEnv env;
  auto& writer = env.NewClient();
  ClientOptions tiny;
  tiny.channel_capacity = 2;
  FarClient watcher(&env.fabric(), 66, tiny);
  NotifySpec spec;
  spec.mode = NotifyMode::kOnWrite;
  spec.addr = 4096;
  spec.len = 256;
  spec.policy.coalesce = false;
  ASSERT_TRUE(watcher.Subscribe(spec).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(writer.FetchAdd(4096 + (i % 32) * 8, 1).ok());
  }
  bool saw_warning = false;
  while (auto event = watcher.PollNotification()) {
    saw_warning |= event->kind == NotifyEventKind::kLossWarning;
  }
  ASSERT_TRUE(saw_warning);
  // Resync: one far read of the watched range gives exact state.
  std::vector<uint64_t> counts(32);
  ASSERT_TRUE(watcher
                  .Read(4096, std::as_writable_bytes(
                                  std::span<uint64_t>(counts)))
                  .ok());
  uint64_t total = 0;
  for (uint64_t c : counts) {
    total += c;
  }
  EXPECT_EQ(total, 50u);
}

}  // namespace
}  // namespace fmds
