#include <gtest/gtest.h>

#include "src/core/blob_store.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

std::vector<std::byte> Blob(const std::string& text) {
  std::vector<std::byte> out(text.size());
  std::memcpy(out.data(), text.data(), text.size());
  return out;
}

std::string Text(const std::vector<std::byte>& blob) {
  return std::string(reinterpret_cast<const char*>(blob.data()),
                     blob.size());
}

TEST(BlobStoreTest, PutGetRoundTrip) {
  TestEnv env(SmallFabric(1, 64ull << 20));
  auto& client = env.NewClient();
  auto store = HtBlobStore::Create(&client, &env.alloc());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put(1, Blob("hello far memory")).ok());
  auto got = store->Get(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(Text(*got), "hello far memory");
  EXPECT_EQ(store->Get(2).status().code(), StatusCode::kNotFound);
}

TEST(BlobStoreTest, EmptyAndLargeValues) {
  TestEnv env(SmallFabric(1, 64ull << 20));
  auto& client = env.NewClient();
  auto store = HtBlobStore::Create(&client, &env.alloc());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put(1, {}).ok());
  EXPECT_TRUE(store->Get(1)->empty());
  // Larger than the speculative first fetch: needs the second read.
  std::string big(10000, 'x');
  big[9999] = 'Z';
  ASSERT_TRUE(store->Put(2, Blob(big)).ok());
  auto got = store->Get(2);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), big.size());
  EXPECT_EQ(Text(*got), big);
}

TEST(BlobStoreTest, SmallValueGetIsTwoFarAccesses) {
  TestEnv env(SmallFabric(1, 64ull << 20));
  auto& client = env.NewClient();
  HtTree::Options options;
  options.buckets_per_table = 4096;
  auto store = HtBlobStore::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put(7, Blob("v")).ok());
  const uint64_t before = client.stats().far_ops;
  ASSERT_TRUE(store->Get(7).ok());
  EXPECT_EQ(client.stats().far_ops - before, 2u)
      << "map lookup + one blob read";
}

TEST(BlobStoreTest, SizeHintAvoidsSecondRead) {
  TestEnv env(SmallFabric(1, 64ull << 20));
  auto& client = env.NewClient();
  HtTree::Options options;
  options.buckets_per_table = 4096;
  auto store = HtBlobStore::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(store.ok());
  std::string big(4000, 'y');
  ASSERT_TRUE(store->Put(3, Blob(big)).ok());
  const uint64_t before = client.stats().far_ops;
  auto got = store->Get(3, /*size_hint=*/4000);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 4000u);
  EXPECT_EQ(client.stats().far_ops - before, 2u);
}

TEST(BlobStoreTest, OverwriteReplacesAtomically) {
  TestEnv env(SmallFabric(1, 64ull << 20));
  auto& client = env.NewClient();
  auto store = HtBlobStore::Create(&client, &env.alloc());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put(5, Blob("old value")).ok());
  ASSERT_TRUE(store->Put(5, Blob("new")).ok());
  EXPECT_EQ(Text(*store->Get(5)), "new");
}

TEST(BlobStoreTest, RemoveAndSecondClient) {
  TestEnv env(SmallFabric(1, 64ull << 20));
  auto& a = env.NewClient();
  auto& b = env.NewClient();
  auto store_a = HtBlobStore::Create(&a, &env.alloc());
  ASSERT_TRUE(store_a.ok());
  ASSERT_TRUE(store_a->Put(9, Blob("shared")).ok());
  auto store_b = HtBlobStore::Attach(&b, &env.alloc(), store_a->header());
  ASSERT_TRUE(store_b.ok());
  EXPECT_EQ(Text(*store_b->Get(9)), "shared");
  ASSERT_TRUE(store_b->Remove(9).ok());
  EXPECT_EQ(store_a->Get(9).status().code(), StatusCode::kNotFound);
}

TEST(BlobStoreTest, ManyKeysWithSplits) {
  TestEnv env(SmallFabric(1, 128ull << 20));
  auto& client = env.NewClient();
  HtTree::Options options;
  options.buckets_per_table = 64;  // force splits
  auto store = HtBlobStore::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(store.ok());
  for (uint64_t k = 1; k <= 300; ++k) {
    ASSERT_TRUE(store->Put(k, Blob("value-" + std::to_string(k))).ok());
  }
  for (uint64_t k = 1; k <= 300; ++k) {
    ASSERT_EQ(Text(*store->Get(k)), "value-" + std::to_string(k)) << k;
  }
}

}  // namespace
}  // namespace fmds
