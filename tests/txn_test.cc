// Optimistic multi-key transactions (src/core/txn.*): commit semantics,
// conflict detection, the NearCache fast paths (cached txn reads still
// validate; writer-side refills cost zero far accesses), and splits racing
// in-flight transactions.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/core/sharded_map.h"
#include "src/core/txn.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

ShardedMap::Options SmallMapOptions(uint32_t shards = 4) {
  ShardedMap::Options options;
  options.num_shards = shards;
  options.shard.buckets_per_table = 64;
  return options;
}

TEST(TxnTest, ReadYourWritesAndRepeatableReads) {
  TestEnv env(SmallFabric(4, 16ull << 20));
  auto& client = env.NewClient();
  auto map = ShardedMap::Create(&client, &env.alloc(), SmallMapOptions());
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->Put(1, 100).ok());

  Txn txn(&*map);
  auto v = txn.Get(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 100u);
  ASSERT_TRUE(txn.Put(1, 200).ok());
  // Buffered write is visible inside the txn ...
  EXPECT_EQ(*txn.Get(1), 200u);
  // ... and invisible outside until commit.
  EXPECT_EQ(*map->Get(1), 100u);
  ASSERT_TRUE(txn.Remove(1).ok());
  EXPECT_EQ(txn.Get(1).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(txn.Put(1, 300).ok());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(*map->Get(1), 300u);
}

TEST(TxnTest, NegativeReadsAreRecordedAndPublishable) {
  TestEnv env(SmallFabric(2, 16ull << 20));
  auto& client = env.NewClient();
  auto map = ShardedMap::Create(&client, &env.alloc(), SmallMapOptions(2));
  ASSERT_TRUE(map.ok());

  Txn txn(&*map);
  EXPECT_EQ(txn.Get(42).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(txn.read_set_size(), 1u);  // a miss is an observation
  ASSERT_TRUE(txn.Put(42, 7).ok());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(*map->Get(42), 7u);

  // Remove through a txn leaves a tombstone readers observe as NotFound.
  Txn txn2(&*map);
  ASSERT_TRUE(txn2.Remove(42).ok());
  ASSERT_TRUE(txn2.Commit().ok());
  EXPECT_EQ(map->Get(42).status().code(), StatusCode::kNotFound);
}

TEST(TxnTest, MultiKeyCommitAcrossShardsIsAtomic) {
  TestEnv env(SmallFabric(4, 16ull << 20));
  auto& client = env.NewClient();
  auto map = ShardedMap::Create(&client, &env.alloc(), SmallMapOptions());
  ASSERT_TRUE(map.ok());
  // Pick keys that land on distinct shards so the commit exercises the
  // two-round pending-lock path across nodes.
  std::vector<uint64_t> keys;
  for (uint64_t k = 1; keys.size() < 4; ++k) {
    bool dup = false;
    for (uint64_t other : keys) {
      dup |= map->ShardOf(other) == map->ShardOf(k);
    }
    if (!dup) {
      keys.push_back(k);
    }
  }
  for (uint64_t k : keys) {
    ASSERT_TRUE(map->Put(k, 1000).ok());
  }

  const ClientStats before = client.stats();
  Txn txn(&*map);
  for (uint64_t k : keys) {
    ASSERT_TRUE(txn.Get(k).ok());
    ASSERT_TRUE(txn.Put(k, 2000 + k).ok());
  }
  ASSERT_TRUE(txn.Commit().ok());
  const ClientStats delta = client.stats().Delta(before);
  EXPECT_EQ(delta.txn_commits, 1u);
  EXPECT_EQ(delta.txn_aborts, 0u);
  for (uint64_t k : keys) {
    EXPECT_EQ(*map->Get(k), 2000 + k);
  }
}

TEST(TxnTest, MultiGetMatchesGetAndJoinsTheReadSet) {
  TestEnv env(SmallFabric(4, 16ull << 20));
  auto& client = env.NewClient();
  auto map = ShardedMap::Create(&client, &env.alloc(), SmallMapOptions());
  ASSERT_TRUE(map.ok());
  for (uint64_t k = 1; k <= 64; ++k) {
    ASSERT_TRUE(map->Put(k, k * 3).ok());
  }
  std::vector<uint64_t> batch{1, 17, 33, 64, 999, 17};  // dup + absent
  Txn txn(&*map);
  ASSERT_TRUE(txn.Put(33, 5555).ok());  // buffered write shadows far state
  auto results = txn.MultiGet(batch);
  ASSERT_EQ(results.size(), batch.size());
  EXPECT_EQ(*results[0], 3u);
  EXPECT_EQ(*results[1], 51u);
  EXPECT_EQ(*results[2], 5555u);  // read-your-writes through the batch
  EXPECT_EQ(*results[3], 192u);
  EXPECT_EQ(results[4].status().code(), StatusCode::kNotFound);
  EXPECT_EQ(*results[5], 51u);
  EXPECT_GE(txn.read_set_size(), 4u);  // batch reads are validated too
  ASSERT_TRUE(txn.Commit().ok());
}

TEST(TxnTest, WriteConflictAbortsLoser) {
  TestEnv env(SmallFabric(2, 16ull << 20));
  auto& client_a = env.NewClient();
  auto& client_b = env.NewClient();
  auto map_a = ShardedMap::Create(&client_a, &env.alloc(), SmallMapOptions(2));
  ASSERT_TRUE(map_a.ok());
  auto map_b =
      ShardedMap::Attach(&client_b, &env.alloc(), map_a->directory());
  ASSERT_TRUE(map_b.ok());
  ASSERT_TRUE(map_a->Put(5, 1).ok());

  Txn txn_a(&*map_a);
  Txn txn_b(&*map_b);
  ASSERT_TRUE(txn_a.Get(5).ok());
  ASSERT_TRUE(txn_b.Get(5).ok());
  ASSERT_TRUE(txn_a.Put(5, 10).ok());
  ASSERT_TRUE(txn_b.Put(5, 20).ok());
  ASSERT_TRUE(txn_a.Commit().ok());
  Status s = txn_b.Commit();
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_TRUE(txn_b.aborted());
  EXPECT_EQ(*map_a->Get(5), 10u);
  EXPECT_EQ(client_b.stats().txn_aborts, 1u);
}

TEST(TxnTest, ReadOnlySnapshotAbortsWhenAKeyMoves) {
  TestEnv env(SmallFabric(2, 16ull << 20));
  auto& client_a = env.NewClient();
  auto& client_b = env.NewClient();
  auto map_a = ShardedMap::Create(&client_a, &env.alloc(), SmallMapOptions(2));
  ASSERT_TRUE(map_a.ok());
  auto map_b =
      ShardedMap::Attach(&client_b, &env.alloc(), map_a->directory());
  ASSERT_TRUE(map_b.ok());
  ASSERT_TRUE(map_a->Put(1, 100).ok());
  ASSERT_TRUE(map_a->Put(2, 200).ok());

  // Untouched snapshot commits.
  Txn quiet(&*map_a);
  ASSERT_TRUE(quiet.Get(1).ok());
  ASSERT_TRUE(quiet.Get(2).ok());
  EXPECT_TRUE(quiet.Commit().ok());

  // A write landing between the reads and the commit aborts the snapshot.
  Txn txn(&*map_a);
  ASSERT_TRUE(txn.Get(1).ok());
  ASSERT_TRUE(txn.Get(2).ok());
  ASSERT_TRUE(map_b->Put(2, 999).ok());
  EXPECT_EQ(txn.Commit().code(), StatusCode::kAborted);
  EXPECT_GE(client_a.stats().txn_validate_fails, 1u);
}

TEST(TxnTest, AbortedCommitPublishesNothing) {
  TestEnv env(SmallFabric(4, 16ull << 20));
  auto& client_a = env.NewClient();
  auto& client_b = env.NewClient();
  auto map_a = ShardedMap::Create(&client_a, &env.alloc(), SmallMapOptions());
  ASSERT_TRUE(map_a.ok());
  auto map_b =
      ShardedMap::Attach(&client_b, &env.alloc(), map_a->directory());
  ASSERT_TRUE(map_b.ok());
  std::vector<uint64_t> keys;
  for (uint64_t k = 1; keys.size() < 3; ++k) {
    bool dup = false;
    for (uint64_t other : keys) {
      dup |= map_a->ShardOf(other) == map_a->ShardOf(k);
    }
    if (!dup) {
      keys.push_back(k);
    }
  }
  for (uint64_t k : keys) {
    ASSERT_TRUE(map_a->Put(k, 1).ok());
  }

  // The txn reads all three keys and writes two of them; the conflicting
  // write lands on the *read-only* key, so the multi-bucket prepare
  // succeeds and the abort must roll the pending locks back.
  Txn txn(&*map_a);
  for (uint64_t k : keys) {
    ASSERT_TRUE(txn.Get(k).ok());
  }
  ASSERT_TRUE(txn.Put(keys[0], 7).ok());
  ASSERT_TRUE(txn.Put(keys[1], 8).ok());
  ASSERT_TRUE(map_b->Put(keys[2], 500).ok());
  EXPECT_EQ(txn.Commit().code(), StatusCode::kAborted);
  // Nothing from the txn leaked; the rolled-back buckets still work.
  EXPECT_EQ(*map_a->Get(keys[0]), 1u);
  EXPECT_EQ(*map_a->Get(keys[1]), 1u);
  EXPECT_EQ(*map_a->Get(keys[2]), 500u);
  ASSERT_TRUE(map_a->Put(keys[0], 11).ok());
  EXPECT_EQ(*map_a->Get(keys[0]), 11u);
}

TEST(TxnTest, RunTxnRetriesThroughInterference) {
  TestEnv env(SmallFabric(2, 16ull << 20));
  auto& client_a = env.NewClient();
  auto& client_b = env.NewClient();
  auto map_a = ShardedMap::Create(&client_a, &env.alloc(), SmallMapOptions(2));
  ASSERT_TRUE(map_a.ok());
  auto map_b =
      ShardedMap::Attach(&client_b, &env.alloc(), map_a->directory());
  ASSERT_TRUE(map_b.ok());
  ASSERT_TRUE(map_a->Put(1, 500).ok());
  ASSERT_TRUE(map_a->Put(2, 500).ok());

  // Two threads transfer in opposite directions; every attempt is an RMW
  // txn, so the 1000-unit total is conserved no matter who aborts whom.
  const auto transfer = [](ShardedMap* map, uint64_t from, uint64_t to,
                           int rounds) {
    TxnOptions options;
    options.max_attempts = 256;
    options.backoff_base_us = 5;
    options.seed = from * 1000 + to;
    for (int i = 0; i < rounds; ++i) {
      Status s = RunTxn(map, options, [&](Txn& txn) -> Status {
        FMDS_ASSIGN_OR_RETURN(uint64_t src, txn.Get(from));
        FMDS_ASSIGN_OR_RETURN(uint64_t dst, txn.Get(to));
        if (src == 0) {
          return OkStatus();  // nothing to move
        }
        FMDS_RETURN_IF_ERROR(txn.Put(from, src - 1));
        FMDS_RETURN_IF_ERROR(txn.Put(to, dst + 1));
        return OkStatus();
      });
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
  };
  std::thread ta(transfer, &*map_a, 1, 2, 50);
  std::thread tb(transfer, &*map_b, 2, 1, 50);
  ta.join();
  tb.join();
  EXPECT_EQ(*map_a->Get(1) + *map_a->Get(2), 1000u);
  // Both sides committed all their rounds.
  EXPECT_EQ(client_a.stats().txn_commits + client_b.stats().txn_commits,
            100u);
}

TEST(TxnTest, DeadHandleRejectsEverything) {
  TestEnv env(SmallFabric(1, 8ull << 20));
  auto& client = env.NewClient();
  auto map = ShardedMap::Create(&client, &env.alloc(), SmallMapOptions(1));
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->Put(1, 1).ok());
  Txn txn(&*map);
  ASSERT_TRUE(txn.Put(1, 2).ok());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(txn.Commit().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(txn.Get(1).ok());
  EXPECT_FALSE(txn.Put(1, 3).ok());
}

// ---- Satellite: cached txn reads still validate ----

TEST(TxnCacheTest, CachedReadRecordsWatchWordAndAbortsOnConflict) {
  TestEnv env(SmallFabric(1, 16ull << 20));
  auto& client_a = env.NewClient();
  auto& client_b = env.NewClient();
  ShardedMap::Options options = SmallMapOptions(1);
  options.shard.cache.budget_bytes = 64 << 10;
  options.shard.cache.admit_after = 1;
  auto map_a = ShardedMap::Create(&client_a, &env.alloc(), options);
  ASSERT_TRUE(map_a.ok());
  auto map_b = ShardedMap::Attach(&client_b, &env.alloc(),
                                  map_a->directory());
  ASSERT_TRUE(map_b.ok());
  ASSERT_TRUE(map_a->Put(1, 100).ok());
  ASSERT_TRUE(*map_a->Get(1) == 100u);  // admit into A's NearCache
  ASSERT_TRUE(*map_a->Get(1) == 100u);  // warm: hits from here on

  // The txn read is served from near memory — zero far accesses — yet it
  // must still join the read set under the entry's watched head word.
  const ClientStats before = client_a.stats();
  Txn txn(&*map_a);
  auto v = txn.Get(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 100u);
  EXPECT_EQ(client_a.stats().Delta(before).far_ops, 0u)
      << "cached txn read must not pay a round trip";
  EXPECT_EQ(txn.read_set_size(), 1u);

  // A conflicting write through another handle swings the bucket word; the
  // commit's validation round must observe it and abort, even though this
  // client never dispatched the invalidation notification.
  ASSERT_TRUE(map_b->Put(1, 999).ok());
  EXPECT_EQ(txn.Commit().code(), StatusCode::kAborted);
  EXPECT_GE(client_a.stats().txn_validate_fails, 1u);
}

TEST(TxnCacheTest, CachedReadCommitsWhenUnchanged) {
  TestEnv env(SmallFabric(1, 16ull << 20));
  auto& client = env.NewClient();
  ShardedMap::Options options = SmallMapOptions(1);
  options.shard.cache.budget_bytes = 64 << 10;
  options.shard.cache.admit_after = 1;
  auto map = ShardedMap::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->Put(1, 100).ok());
  ASSERT_TRUE(map->Get(1).ok());
  Txn txn(&*map);
  ASSERT_TRUE(txn.Get(1).ok());
  ASSERT_TRUE(txn.Put(2, 7).ok());
  EXPECT_TRUE(txn.Commit().ok()) << "quiet cached read must validate clean";
  EXPECT_EQ(*map->Get(2), 7u);
}

// ---- Satellite: writer-side cache refill ----

TEST(TxnCacheTest, PutRefillsCacheWithZeroExtraFarOps) {
  TestEnv env(SmallFabric(1, 16ull << 20));
  auto& client = env.NewClient();
  ShardedMap::Options options = SmallMapOptions(1);
  options.shard.cache.budget_bytes = 64 << 10;
  options.shard.cache.admit_after = 1;
  auto map = ShardedMap::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->Put(1, 100).ok());
  ASSERT_TRUE(map->Get(1).ok());  // admit (pays the subscribe round trip)

  // A store is exactly 2 far accesses (item write + bucket CAS); the refill
  // that keeps the cache warm must add none.
  const ClientStats before = client.stats();
  ASSERT_TRUE(map->Put(1, 200).ok());
  EXPECT_EQ(client.stats().Delta(before).far_ops, 2u)
      << "writer-side refill must be free";

  // The refilled entry survives the echo of the writer's own CAS (the
  // notification's word matches the fill word) and serves the next read
  // with zero far accesses.
  const ClientStats mid = client.stats();
  auto v = map->Get(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 200u);
  EXPECT_EQ(client.stats().Delta(mid).far_ops, 0u)
      << "read-after-write should hit the refilled entry";
  NearCache* cache = map->shard(0).near_cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_GE(cache->stats().writer_refills, 1u);
  EXPECT_GE(cache->stats().word_confirms, 1u)
      << "the CAS echo must confirm, not kill, the refilled entry";
}

TEST(TxnCacheTest, CrossClientWriteStillInvalidatesRefilledEntry) {
  // Word-versioned keep-alive must not weaken cross-client coherence: a
  // *different* client's write carries a different head word, so the
  // notification still kills the entry.
  TestEnv env(SmallFabric(1, 16ull << 20));
  auto& client_a = env.NewClient();
  auto& client_b = env.NewClient();
  ShardedMap::Options options = SmallMapOptions(1);
  options.shard.cache.budget_bytes = 64 << 10;
  options.shard.cache.admit_after = 1;
  auto map_a = ShardedMap::Create(&client_a, &env.alloc(), options);
  ASSERT_TRUE(map_a.ok());
  auto map_b = ShardedMap::Attach(&client_b, &env.alloc(),
                                  map_a->directory());
  ASSERT_TRUE(map_b.ok());
  ASSERT_TRUE(map_a->Put(1, 100).ok());
  ASSERT_TRUE(map_a->Get(1).ok());      // admit
  ASSERT_TRUE(map_a->Put(1, 200).ok()); // refill keeps it warm
  ASSERT_TRUE(map_b->Put(1, 300).ok()); // foreign write
  auto v = map_a->Get(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 300u) << "foreign write must invalidate the refilled entry";
}

// ---- Satellite: splits racing in-flight transactions ----

TEST(TxnSplitTest, SplitOfReadSetBucketAbortsTxn) {
  TestEnv env(SmallFabric(2, 16ull << 20));
  auto& client = env.NewClient();
  auto map = ShardedMap::Create(&client, &env.alloc(), SmallMapOptions(2));
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->Put(1, 100).ok());
  ASSERT_TRUE(map->Put(2, 200).ok());

  Txn txn(&*map);
  ASSERT_TRUE(txn.Get(1).ok());
  ASSERT_TRUE(txn.Put(2, 777).ok());
  // A split freezes every bucket of key 1's table to the retired sentinel —
  // the recorded word is gone no matter which bucket held it.
  ASSERT_TRUE(map->shard(map->ShardOf(1)).SplitTableOf(1).ok());
  EXPECT_EQ(txn.Commit().code(), StatusCode::kAborted);
  EXPECT_EQ(*map->Get(1), 100u);
  EXPECT_EQ(*map->Get(2), 200u) << "aborted write must not surface";
}

TEST(TxnSplitTest, SplitOfWriteSetBucketAbortsTxnCleanly) {
  TestEnv env(SmallFabric(2, 16ull << 20));
  auto& client = env.NewClient();
  auto map = ShardedMap::Create(&client, &env.alloc(), SmallMapOptions(2));
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->Put(1, 100).ok());

  Txn txn(&*map);
  ASSERT_TRUE(txn.Get(1).ok());
  ASSERT_TRUE(txn.Put(1, 777).ok());
  ASSERT_TRUE(map->shard(map->ShardOf(1)).SplitTableOf(1).ok());
  // Prepare CASes against the retired table and mispredicts.
  EXPECT_EQ(txn.Commit().code(), StatusCode::kAborted);
  EXPECT_GE(client.stats().txn_prepare_fails + client.stats().txn_validate_fails,
            1u);
  // The map is fully usable afterwards and a retry lands in the new table.
  EXPECT_EQ(*map->Get(1), 100u);
  TxnOptions retry;
  ASSERT_TRUE(RunTxn(&*map, retry, [](Txn& t) -> Status {
                return t.Put(1, 888);
              }).ok());
  EXPECT_EQ(*map->Get(1), 888u);
}

TEST(TxnSplitTest, RandomizedSplitsNeverCorruptCommittedState) {
  // Transactions RMW-increment a counter key while a second thread keeps
  // splitting the tables under them. Every committed increment must stick.
  TestEnv env(SmallFabric(2, 32ull << 20));
  auto& client_a = env.NewClient();
  auto& client_b = env.NewClient();
  ShardedMap::Options options = SmallMapOptions(2);
  options.shard.buckets_per_table = 16;  // small tables: cheap splits
  auto map_a = ShardedMap::Create(&client_a, &env.alloc(), options);
  ASSERT_TRUE(map_a.ok());
  auto map_b = ShardedMap::Attach(&client_b, &env.alloc(), map_a->directory(),
                                  options);
  ASSERT_TRUE(map_b.ok());
  constexpr uint64_t kKeys = 4;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(map_a->Put(k, 0).ok());
  }

  constexpr int kRounds = 40;
  std::thread incrementer([&] {
    TxnOptions topt;
    topt.max_attempts = 512;
    topt.backoff_base_us = 5;
    for (int i = 0; i < kRounds; ++i) {
      Status s = RunTxn(&*map_a, topt, [&](Txn& txn) -> Status {
        for (uint64_t k = 0; k < kKeys; ++k) {
          FMDS_ASSIGN_OR_RETURN(uint64_t v, txn.Get(k));
          FMDS_RETURN_IF_ERROR(txn.Put(k, v + 1));
        }
        return OkStatus();
      });
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
  });
  std::thread splitter([&] {
    Rng rng(77);
    for (int i = 0; i < 12; ++i) {
      const uint64_t k = rng.NextBelow(kKeys);
      Status s = map_b->shard(map_b->ShardOf(k)).SplitTableOf(k);
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
  });
  incrementer.join();
  splitter.join();
  for (uint64_t k = 0; k < kKeys; ++k) {
    auto v = map_a->Get(k);
    ASSERT_TRUE(v.ok()) << "key " << k;
    EXPECT_EQ(*v, static_cast<uint64_t>(kRounds)) << "key " << k;
  }
}

}  // namespace
}  // namespace fmds
