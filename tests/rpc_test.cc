#include <gtest/gtest.h>

#include <thread>

#include "src/rpc/kv_service.h"
#include "src/rpc/message.h"
#include "src/rpc/queue_service.h"
#include "src/rpc/rpc.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

TEST(MessageTest, RoundTrip) {
  MsgWriter writer;
  writer.U8(7);
  writer.U32(1234);
  writer.U64(0xdeadbeefcafeULL);
  writer.Str("hello");
  MsgReader reader(writer.view());
  EXPECT_EQ(*reader.U8(), 7);
  EXPECT_EQ(*reader.U32(), 1234u);
  EXPECT_EQ(*reader.U64(), 0xdeadbeefcafeULL);
  auto bytes = reader.Bytes();
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(bytes->data()),
                        bytes->size()),
            "hello");
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(MessageTest, TruncationDetected) {
  MsgWriter writer;
  writer.U32(5);
  MsgReader reader(writer.view());
  EXPECT_FALSE(reader.U64().ok());
}

TEST(RpcTest, UnknownMethodFails) {
  TestEnv env;
  RpcServer server;
  RpcClient rpc(&env.NewClient(), &server);
  std::vector<std::byte> resp;
  EXPECT_EQ(rpc.Call(999, {}, resp).code(), StatusCode::kUnimplemented);
}

TEST(RpcTest, CallAccountsLatencyAndServerBusyTime) {
  TestEnv env;
  RpcServer server;
  KvService service(&server);
  auto& client = env.NewClient();
  KvStub stub{RpcClient(&client, &server)};
  const uint64_t t0 = client.clock().now_ns();
  ASSERT_TRUE(stub.Put(1, 2).ok());
  EXPECT_GT(client.clock().now_ns(), t0);
  EXPECT_EQ(client.stats().rpc_calls, 1u);
  EXPECT_EQ(server.calls(), 1u);
  EXPECT_GT(server.busy_ns(), 0u);
  // An RPC costs zero one-sided far ops — that's the whole trade.
  EXPECT_EQ(client.stats().far_ops, 0u);
}

TEST(KvServiceTest, PutGetDelete) {
  TestEnv env;
  RpcServer server;
  KvService service(&server);
  KvStub stub{RpcClient(&env.NewClient(), &server)};
  EXPECT_EQ(stub.Get(42).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(stub.Put(42, 99).ok());
  EXPECT_EQ(*stub.Get(42), 99u);
  ASSERT_TRUE(stub.Put(42, 100).ok());
  EXPECT_EQ(*stub.Get(42), 100u);
  EXPECT_EQ(*stub.Size(), 1u);
  ASSERT_TRUE(stub.Delete(42).ok());
  EXPECT_EQ(stub.Get(42).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(stub.Delete(42).code(), StatusCode::kNotFound);
}

TEST(KvServiceTest, ManyKeys) {
  TestEnv env;
  RpcServer server;
  KvService service(&server);
  KvStub stub{RpcClient(&env.NewClient(), &server)};
  for (uint64_t k = 1; k <= 1000; ++k) {
    ASSERT_TRUE(stub.Put(k, k * k).ok());
  }
  for (uint64_t k = 1; k <= 1000; ++k) {
    EXPECT_EQ(*stub.Get(k), k * k);
  }
  EXPECT_EQ(*stub.Size(), 1000u);
}

TEST(QueueServiceTest, Fifo) {
  TestEnv env;
  RpcServer server;
  QueueService service(&server);
  QueueStub stub{RpcClient(&env.NewClient(), &server)};
  EXPECT_EQ(stub.Dequeue().status().code(), StatusCode::kNotFound);
  for (uint64_t v = 1; v <= 10; ++v) {
    ASSERT_TRUE(stub.Enqueue(v).ok());
  }
  EXPECT_EQ(*stub.Len(), 10u);
  for (uint64_t v = 1; v <= 10; ++v) {
    EXPECT_EQ(*stub.Dequeue(), v);
  }
  EXPECT_EQ(stub.Dequeue().status().code(), StatusCode::kNotFound);
}

TEST(RpcConcurrencyTest, ServerSerializesClients) {
  TestEnv env;
  RpcServer server;
  KvService service(&server);
  constexpr int kThreads = 4;
  constexpr int kOps = 500;
  std::vector<FarClient*> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(&env.NewClient());
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      KvStub stub{RpcClient(clients[t], &server)};
      for (int i = 0; i < kOps; ++i) {
        ASSERT_TRUE(stub.Put(t * kOps + i, i).ok());
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(server.calls(), static_cast<uint64_t>(kThreads) * kOps);
  KvStub stub{RpcClient(clients[0], &server)};
  EXPECT_EQ(*stub.Size(), static_cast<uint64_t>(kThreads) * kOps);
}

}  // namespace
}  // namespace fmds
