#include <gtest/gtest.h>

#include <thread>

#include "src/common/bytes.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

// --------------------------- Address translation --------------------------

TEST(FabricTest, PartitionedTranslation) {
  TestEnv env(SmallFabric(4, 1 << 20));
  auto& fabric = env.fabric();
  EXPECT_EQ(fabric.Translate(0)->node, 0u);
  EXPECT_EQ(fabric.Translate((1 << 20) - 8)->node, 0u);
  EXPECT_EQ(fabric.Translate(1 << 20)->node, 1u);
  EXPECT_EQ(fabric.Translate(3u * (1 << 20) + 16)->node, 3u);
  EXPECT_EQ(fabric.Translate(3u * (1 << 20) + 16)->offset, 16u);
  EXPECT_FALSE(fabric.Translate(4ull << 20).ok());
}

TEST(FabricTest, StripedTranslation) {
  TestEnv env(StripedFabric(4, kPageSize, 1 << 20));
  auto& fabric = env.fabric();
  // Consecutive pages hit consecutive nodes.
  for (uint32_t page = 0; page < 8; ++page) {
    EXPECT_EQ(fabric.Translate(page * kPageSize)->node, page % 4);
  }
  // Second stripe lap lands at the next local page.
  auto loc = fabric.Translate(4 * kPageSize + 24);
  EXPECT_EQ(loc->node, 0u);
  EXPECT_EQ(loc->offset, kPageSize + 24);
}

TEST(FabricTest, SegmentsSplitAtStripeBoundaries) {
  TestEnv env(StripedFabric(2, kPageSize, 1 << 20));
  std::vector<Fabric::Segment> segs;
  ASSERT_TRUE(env.fabric()
                  .Segments(kPageSize - 16, 32, segs)
                  .ok());
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].node, 0u);
  EXPECT_EQ(segs[0].len, 16u);
  EXPECT_EQ(segs[1].node, 1u);
  EXPECT_EQ(segs[1].len, 16u);
}

TEST(FabricTest, SegmentsMergeWithinPartition) {
  TestEnv env(SmallFabric(2, 1 << 20));
  std::vector<Fabric::Segment> segs;
  ASSERT_TRUE(env.fabric().Segments(1024, 4096, segs).ok());
  EXPECT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].len, 4096u);
}

// ------------------------------- Word ops ---------------------------------

TEST(FarClientTest, WordReadWrite) {
  TestEnv env;
  auto& client = env.NewClient();
  ASSERT_TRUE(client.WriteWord(64, 0x1234).ok());
  EXPECT_EQ(*client.ReadWord(64), 0x1234u);
  EXPECT_FALSE(client.ReadWord(65).ok());  // unaligned
  EXPECT_FALSE(client.WriteWord(61, 1).ok());
}

TEST(FarClientTest, CompareSwapSemantics) {
  TestEnv env;
  auto& client = env.NewClient();
  ASSERT_TRUE(client.WriteWord(64, 10).ok());
  EXPECT_EQ(*client.CompareSwap(64, 10, 20), 10u);  // success: returns old
  EXPECT_EQ(*client.ReadWord(64), 20u);
  EXPECT_EQ(*client.CompareSwap(64, 10, 30), 20u);  // fail: returns observed
  EXPECT_EQ(*client.ReadWord(64), 20u);
}

TEST(FarClientTest, FetchAddWrapsNaturally) {
  TestEnv env;
  auto& client = env.NewClient();
  ASSERT_TRUE(client.WriteWord(64, 5).ok());
  EXPECT_EQ(*client.FetchAdd(64, 3), 5u);
  EXPECT_EQ(*client.ReadWord(64), 8u);
  EXPECT_EQ(*client.FetchAdd(64, static_cast<uint64_t>(-8)), 8u);
  EXPECT_EQ(*client.ReadWord(64), 0u);
}

TEST(FarClientTest, RangeReadWriteUnaligned) {
  TestEnv env;
  auto& client = env.NewClient();
  std::vector<std::byte> data(23);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i + 1);
  }
  ASSERT_TRUE(client.Write(101, data).ok());  // unaligned start, odd length
  std::vector<std::byte> out(23);
  ASSERT_TRUE(client.Read(101, out).ok());
  EXPECT_EQ(out, data);
  // Neighbors untouched.
  std::vector<std::byte> before(5);
  ASSERT_TRUE(client.Read(96, before).ok());
  EXPECT_EQ(before[0], std::byte{0});
}

TEST(FarClientTest, CrossNodeRangeReadWrite) {
  TestEnv env(StripedFabric(4, kPageSize, 1 << 20));
  auto& client = env.NewClient();
  std::vector<uint64_t> data(2048);  // 16 KB: 4 pages -> 4 nodes
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = i * 3 + 1;
  }
  const FarAddr base = 512;
  ASSERT_TRUE(
      client.Write(base, std::as_bytes(std::span<const uint64_t>(data)))
          .ok());
  std::vector<uint64_t> out(2048);
  ASSERT_TRUE(
      client.Read(base, std::as_writable_bytes(std::span<uint64_t>(out)))
          .ok());
  EXPECT_EQ(out, data);
}

// --------------------------- Figure 1: indirection -------------------------

class IndirectTest : public ::testing::Test {
 protected:
  IndirectTest() : env_(SmallFabric()), client_(env_.NewClient()) {}

  TestEnv env_;
  FarClient& client_;
};

TEST_F(IndirectTest, Load0FollowsPointer) {
  // *64 = 256; data at 256.
  ASSERT_TRUE(client_.WriteWord(64, 256).ok());
  ASSERT_TRUE(client_.WriteWord(256, 777).ok());
  uint64_t out = 0;
  auto ptr = client_.Load0(64, AsBytes(out));
  ASSERT_TRUE(ptr.ok());
  EXPECT_EQ(*ptr, 256u);
  EXPECT_EQ(out, 777u);
}

TEST_F(IndirectTest, Load0NullPointerFails) {
  ASSERT_TRUE(client_.WriteWord(64, 0).ok());
  uint64_t out;
  EXPECT_EQ(client_.Load0(64, AsBytes(out)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(IndirectTest, Load1IndexesThePointerArray) {
  // Pointer table at 64: [256, 320]; load1(64, 8) follows table[1].
  ASSERT_TRUE(client_.WriteWord(64, 256).ok());
  ASSERT_TRUE(client_.WriteWord(72, 320).ok());
  ASSERT_TRUE(client_.WriteWord(320, 999).ok());
  uint64_t out = 0;
  auto ptr = client_.Load1(64, 8, AsBytes(out));
  ASSERT_TRUE(ptr.ok());
  EXPECT_EQ(*ptr, 320u);
  EXPECT_EQ(out, 999u);
}

TEST_F(IndirectTest, Load2OffsetsTheTarget) {
  // *64 = 256; load2(64, 16) reads 256+16.
  ASSERT_TRUE(client_.WriteWord(64, 256).ok());
  ASSERT_TRUE(client_.WriteWord(272, 555).ok());
  uint64_t out = 0;
  ASSERT_TRUE(client_.Load2(64, 16, AsBytes(out)).ok());
  EXPECT_EQ(out, 555u);
}

TEST_F(IndirectTest, StoreVariantsWriteThroughPointers) {
  ASSERT_TRUE(client_.WriteWord(64, 256).ok());
  ASSERT_TRUE(client_.WriteWord(72, 512).ok());
  uint64_t v = 11;
  ASSERT_TRUE(client_.Store0(64, AsConstBytes(v)).ok());
  EXPECT_EQ(*client_.ReadWord(256), 11u);
  v = 22;
  ASSERT_TRUE(client_.Store1(64, 8, AsConstBytes(v)).ok());
  EXPECT_EQ(*client_.ReadWord(512), 22u);
  v = 33;
  ASSERT_TRUE(client_.Store2(64, 24, AsConstBytes(v)).ok());
  EXPECT_EQ(*client_.ReadWord(280), 33u);
}

TEST_F(IndirectTest, FaaiBumpsPointerAndReturnsPointee) {
  // Queue-style: *64 = 256 (cursor); slots at 256, 264 hold 100, 200.
  ASSERT_TRUE(client_.WriteWord(64, 256).ok());
  ASSERT_TRUE(client_.WriteWord(256, 100).ok());
  ASSERT_TRUE(client_.WriteWord(264, 200).ok());
  uint64_t out = 0;
  auto old = client_.Faai(64, 8, AsBytes(out));
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(*old, 256u);
  EXPECT_EQ(out, 100u);
  EXPECT_EQ(*client_.ReadWord(64), 264u);  // pointer advanced
  ASSERT_TRUE(client_.Faai(64, 8, AsBytes(out)).ok());
  EXPECT_EQ(out, 200u);
}

TEST_F(IndirectTest, SaaiStoresAtOldPointer) {
  ASSERT_TRUE(client_.WriteWord(64, 256).ok());
  uint64_t v = 42;
  auto old = client_.Saai(64, 8, AsConstBytes(v));
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(*old, 256u);
  EXPECT_EQ(*client_.ReadWord(256), 42u);
  EXPECT_EQ(*client_.ReadWord(64), 264u);
}

TEST_F(IndirectTest, AddVariants) {
  ASSERT_TRUE(client_.WriteWord(64, 256).ok());   // add0 anchor
  ASSERT_TRUE(client_.WriteWord(72, 512).ok());   // add1 anchor at 64+8
  ASSERT_TRUE(client_.WriteWord(256, 1).ok());
  ASSERT_TRUE(client_.WriteWord(512, 2).ok());
  ASSERT_TRUE(client_.WriteWord(280, 3).ok());    // add2 target 256+24
  ASSERT_TRUE(client_.Add0(64, 10).ok());
  EXPECT_EQ(*client_.ReadWord(256), 11u);
  ASSERT_TRUE(client_.Add1(64, 20, 8).ok());
  EXPECT_EQ(*client_.ReadWord(512), 22u);
  ASSERT_TRUE(client_.Add2(64, 30, 24).ok());
  EXPECT_EQ(*client_.ReadWord(280), 33u);
}

TEST_F(IndirectTest, IndirectCostsOneFarAccess) {
  ASSERT_TRUE(client_.WriteWord(64, 256).ok());
  ASSERT_TRUE(client_.WriteWord(256, 5).ok());
  const uint64_t before = client_.stats().far_ops;
  uint64_t out;
  ASSERT_TRUE(client_.Load0(64, AsBytes(out)).ok());
  EXPECT_EQ(client_.stats().far_ops - before, 1u);
  ASSERT_TRUE(client_.Add0(64, 1).ok());
  EXPECT_EQ(client_.stats().far_ops - before, 2u);
}

// ---------------------- §7.1: cross-node indirection -----------------------

TEST(IndirectionPolicyTest, ForwardKeepsOneRoundTrip) {
  FabricOptions options = StripedFabric(2, kPageSize, 1 << 20);
  options.indirection = IndirectionPolicy::kForward;
  TestEnv env(options);
  auto& client = env.NewClient();
  // Pointer on node 0 (addr 64), target on node 1 (addr kPageSize + 64).
  const FarAddr target = kPageSize + 64;
  ASSERT_TRUE(client.WriteWord(64, target).ok());
  ASSERT_TRUE(client.WriteWord(target, 321).ok());
  const auto before = client.stats();
  uint64_t out = 0;
  ASSERT_TRUE(client.Load0(64, AsBytes(out)).ok());
  EXPECT_EQ(out, 321u);
  const auto delta = client.stats().Delta(before);
  EXPECT_EQ(delta.far_ops, 1u);    // one client round trip
  EXPECT_EQ(delta.messages, 2u);   // plus one node-to-node hop
  EXPECT_EQ(env.fabric().node(0).stats().forwards.load(), 1u);
}

TEST(IndirectionPolicyTest, ErrorPolicyCostsTwoRoundTrips) {
  FabricOptions options = StripedFabric(2, kPageSize, 1 << 20);
  options.indirection = IndirectionPolicy::kError;
  TestEnv env(options);
  auto& client = env.NewClient();
  const FarAddr target = kPageSize + 64;
  ASSERT_TRUE(client.WriteWord(64, target).ok());
  ASSERT_TRUE(client.WriteWord(target, 321).ok());
  const auto before = client.stats();
  uint64_t out = 0;
  ASSERT_TRUE(client.Load0(64, AsBytes(out)).ok());
  EXPECT_EQ(out, 321u);
  EXPECT_EQ(client.stats().Delta(before).far_ops, 2u);
  EXPECT_EQ(env.fabric().node(0).stats().forwards.load(), 0u);
}

TEST(IndirectionPolicyTest, SameNodeIndirectionNeverForwards) {
  FabricOptions options = StripedFabric(2, kPageSize, 1 << 20);
  TestEnv env(options);
  auto& client = env.NewClient();
  ASSERT_TRUE(client.WriteWord(64, 128).ok());  // both on node 0
  ASSERT_TRUE(client.WriteWord(128, 9).ok());
  uint64_t out;
  ASSERT_TRUE(client.Load0(64, AsBytes(out)).ok());
  EXPECT_EQ(env.fabric().node(0).stats().forwards.load(), 0u);
}

TEST(CasBatchTest, IndependentCasesInOneRoundTrip) {
  TestEnv env;
  auto& client = env.NewClient();
  ASSERT_TRUE(client.WriteWord(64, 1).ok());
  ASSERT_TRUE(client.WriteWord(72, 2).ok());
  ASSERT_TRUE(client.WriteWord(80, 3).ok());
  const auto before = client.stats();
  FarClient::CasTarget targets[3] = {
      {64, 1, 10},  // succeeds
      {72, 9, 20},  // fails (expected mismatch)
      {80, 3, 30},  // succeeds
  };
  uint64_t observed[3];
  ASSERT_TRUE(client.CasBatch(targets, observed).ok());
  const auto delta = client.stats().Delta(before);
  EXPECT_EQ(delta.far_ops, 1u);   // one doorbell
  EXPECT_EQ(delta.messages, 3u);  // three fabric messages
  EXPECT_EQ(observed[0], 1u);
  EXPECT_EQ(observed[1], 2u);  // pre-CAS value reported on failure
  EXPECT_EQ(observed[2], 3u);
  EXPECT_EQ(*client.ReadWord(64), 10u);
  EXPECT_EQ(*client.ReadWord(72), 2u);  // untouched
  EXPECT_EQ(*client.ReadWord(80), 30u);
}

TEST(CasBatchTest, ValidatesInput) {
  TestEnv env;
  auto& client = env.NewClient();
  FarClient::CasTarget bad[1] = {{65, 0, 1}};
  uint64_t observed[1];
  EXPECT_FALSE(client.CasBatch(bad, observed).ok());
  FarClient::CasTarget ok_target[2] = {{64, 0, 1}, {72, 0, 1}};
  uint64_t small[1];
  EXPECT_FALSE(client.CasBatch(ok_target, small).ok());
}

// ------------------------------ Scatter-gather -----------------------------

TEST(ScatterGatherTest, RScatterSplitsFarRangeIntoLocalBuffers) {
  TestEnv env;
  auto& client = env.NewClient();
  std::vector<uint64_t> data{1, 2, 3, 4};
  ASSERT_TRUE(
      client.Write(64, std::as_bytes(std::span<const uint64_t>(data))).ok());
  uint64_t a[2] = {};
  uint64_t b[2] = {};
  LocalBuf iov[2] = {{reinterpret_cast<std::byte*>(a), 16},
                     {reinterpret_cast<std::byte*>(b), 16}};
  const uint64_t before = client.stats().far_ops;
  ASSERT_TRUE(client.RScatter(64, iov).ok());
  EXPECT_EQ(client.stats().far_ops - before, 1u);
  EXPECT_EQ(a[0], 1u);
  EXPECT_EQ(a[1], 2u);
  EXPECT_EQ(b[0], 3u);
  EXPECT_EQ(b[1], 4u);
}

TEST(ScatterGatherTest, RGatherCollectsFarIovec) {
  TestEnv env;
  auto& client = env.NewClient();
  ASSERT_TRUE(client.WriteWord(64, 10).ok());
  ASSERT_TRUE(client.WriteWord(4096, 20).ok());
  ASSERT_TRUE(client.WriteWord(8192, 30).ok());
  FarSeg iov[3] = {{64, 8}, {4096, 8}, {8192, 8}};
  uint64_t out[3] = {};
  const auto before = client.stats();
  ASSERT_TRUE(client.RGather(
      iov, std::as_writable_bytes(std::span<uint64_t>(out))).ok());
  const auto delta = client.stats().Delta(before);
  EXPECT_EQ(delta.far_ops, 1u);   // one round trip...
  EXPECT_EQ(delta.messages, 3u);  // ...three concurrent segment reads
  EXPECT_EQ(out[0], 10u);
  EXPECT_EQ(out[1], 20u);
  EXPECT_EQ(out[2], 30u);
}

TEST(ScatterGatherTest, WScatterWritesFarIovec) {
  TestEnv env;
  auto& client = env.NewClient();
  const uint64_t payload[2] = {111, 222};
  FarSeg iov[2] = {{64, 8}, {1024, 8}};
  ASSERT_TRUE(client.WScatter(
      iov, std::as_bytes(std::span<const uint64_t>(payload))).ok());
  EXPECT_EQ(*client.ReadWord(64), 111u);
  EXPECT_EQ(*client.ReadWord(1024), 222u);
}

TEST(ScatterGatherTest, WGatherWritesFarRangeFromLocalBuffers) {
  TestEnv env;
  auto& client = env.NewClient();
  uint64_t a = 7;
  uint64_t b = 8;
  ConstLocalBuf iov[2] = {{reinterpret_cast<const std::byte*>(&a), 8},
                          {reinterpret_cast<const std::byte*>(&b), 8}};
  ASSERT_TRUE(client.WGather(64, iov).ok());
  EXPECT_EQ(*client.ReadWord(64), 7u);
  EXPECT_EQ(*client.ReadWord(72), 8u);
}

// ------------------------------ Cost model ---------------------------------

TEST(LatencyModelTest, PaperNumbersHold) {
  LatencyModel model;
  // §3.1: far ≈ O(1 µs), near ≈ O(100 ns): at least a 5x gap, around 10x.
  const double ratio = static_cast<double>(model.FarRoundTripNs(8)) /
                       static_cast<double>(model.near_ns);
  EXPECT_GE(ratio, 5.0);
  EXPECT_LE(ratio, 20.0);
  // §2: "transfer 1 KB in 1 µs".
  EXPECT_NEAR(static_cast<double>(model.FarRoundTripNs(1024)), 1000.0, 300.0);
}

TEST(FarClientTest, ClockAdvancesPerOp) {
  TestEnv env;
  auto& client = env.NewClient();
  const uint64_t t0 = client.clock().now_ns();
  ASSERT_TRUE(client.WriteWord(64, 1).ok());
  const uint64_t t1 = client.clock().now_ns();
  EXPECT_GE(t1 - t0, 800u);
  client.AccountNear(1);
  EXPECT_EQ(client.clock().now_ns() - t1,
            env.fabric().options().latency.near_ns);
}

TEST(FarClientTest, BackgroundOpsDoNotAdvanceClock) {
  TestEnv env;
  auto& client = env.NewClient();
  const uint64_t t0 = client.clock().now_ns();
  ASSERT_TRUE(client.PostWriteWordBackground(64, 5).ok());
  ASSERT_TRUE(client.ReadWordBackground(64).ok());
  EXPECT_EQ(client.clock().now_ns(), t0);
  EXPECT_EQ(client.stats().background_ops, 2u);
  EXPECT_EQ(*client.ReadWord(64), 5u);
}

// ------------------------------ Concurrency --------------------------------

TEST(FabricConcurrencyTest, FetchAddIsAtomicAcrossThreads) {
  TestEnv env;
  auto& c0 = env.NewClient();
  ASSERT_TRUE(c0.WriteWord(64, 0).ok());
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  std::vector<FarClient*> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(&env.NewClient());
  }
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        ASSERT_TRUE(clients[t]->FetchAdd(64, 1).ok());
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(*c0.ReadWord(64),
            static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST(FabricConcurrencyTest, CasIsLinearizableAcrossThreads) {
  TestEnv env;
  auto& c0 = env.NewClient();
  ASSERT_TRUE(c0.WriteWord(64, 0).ok());
  constexpr int kThreads = 8;
  std::atomic<int> winners{0};
  std::vector<FarClient*> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(&env.NewClient());
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto old = clients[t]->CompareSwap(64, 0, t + 1);
      if (old.ok() && *old == 0) {
        winners.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(winners.load(), 1);
}

}  // namespace
}  // namespace fmds
