// FarMap interface tests: one generic shadow-equivalence driver runs against
// every map in the repo — HtTree, ShardedMap (both FarMap subclasses) and the
// baseline hash tables via the FarMapRef adapter — through the abstract
// interface only. Also pins the map_options.h consolidation: the composable
// CacheOptions / WriteBehindOptions / RouteOptions blocks and the ONE
// defaulting rule (non-default block value wins over the legacy flat field).
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "src/baselines/chained_hash.h"
#include "src/baselines/neighborhood_hash.h"
#include "src/core/far_map.h"
#include "src/core/ht_tree.h"
#include "src/core/sharded_map.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

// Deterministic mixed workload driven purely through the FarMap interface,
// checked against an in-memory shadow map after every phase.
void RunShadowEquivalence(FarMap& map) {
  std::map<uint64_t, uint64_t> shadow;
  auto check_all = [&] {
    for (const auto& [key, value] : shadow) {
      auto got = map.Get(key);
      ASSERT_TRUE(got.ok()) << map.kind() << " key " << key;
      EXPECT_EQ(*got, value) << map.kind() << " key " << key;
    }
  };

  // Phase 1: point puts + overwrites.
  for (uint64_t k = 1; k <= 64; ++k) {
    ASSERT_TRUE(map.Put(k, k * 10).ok());
    shadow[k] = k * 10;
  }
  for (uint64_t k = 1; k <= 64; k += 3) {
    ASSERT_TRUE(map.Put(k, k * 100).ok());
    shadow[k] = k * 100;
  }
  check_all();

  // Phase 2: removes, including double-remove and missing keys.
  for (uint64_t k = 2; k <= 64; k += 4) {
    ASSERT_TRUE(map.Remove(k).ok());
    shadow.erase(k);
  }
  EXPECT_FALSE(map.Get(2).ok());
  check_all();

  // Phase 3: batched ops (wave engines where the map has them, the FarMap
  // default loops elsewhere — results must be identical either way).
  std::vector<uint64_t> keys;
  std::vector<uint64_t> values;
  for (uint64_t k = 100; k < 164; ++k) {
    keys.push_back(k);
    values.push_back(k ^ 0xABCDu);
  }
  ASSERT_TRUE(map.MultiPut(keys, values).ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    shadow[keys[i]] = values[i];
  }
  // MultiGet over a mix of present and absent keys.
  std::vector<uint64_t> probe = keys;
  probe.push_back(9'999);  // never inserted
  probe.push_back(2);      // removed in phase 2
  const std::vector<Result<uint64_t>> got = map.MultiGet(probe);
  ASSERT_EQ(got.size(), probe.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(got[i].ok()) << map.kind() << " key " << probe[i];
    EXPECT_EQ(*got[i], shadow[probe[i]]);
  }
  EXPECT_FALSE(got[keys.size()].ok());
  EXPECT_FALSE(got[keys.size() + 1].ok());

  // Publish any staging (a no-op for maps without write-behind), then the
  // final full sweep.
  ASSERT_TRUE(map.FlushBarrier().ok());
  check_all();

  // Portable counters moved (maps that track them).
  const FarMapStats stats = map.map_stats();
  if (stats.gets + stats.puts != 0) {
    EXPECT_GE(stats.puts, 64u);
  }
}

TEST(FarMap, ShadowEquivalenceHtTree) {
  TestEnv env(SmallFabric(1));
  auto& client = env.NewClient();
  auto tree = HtTree::Create(&client, &env.alloc(), HtTree::Options{});
  ASSERT_TRUE(tree.ok());
  RunShadowEquivalence(*tree);
  EXPECT_STREQ(tree->kind(), "ht_tree");
}

TEST(FarMap, ShadowEquivalenceShardedMap) {
  TestEnv env(SmallFabric(4, 16ull << 20));
  auto& client = env.NewClient();
  ShardedMap::Options options;
  options.num_shards = 4;
  auto map = ShardedMap::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(map.ok());
  RunShadowEquivalence(*map);
  EXPECT_STREQ(map->kind(), "sharded_map");
}

TEST(FarMap, ShadowEquivalenceBaselinesViaRef) {
  TestEnv env(SmallFabric(1));
  auto& client = env.NewClient();
  auto chained =
      ChainedHash::Create(&client, &env.alloc(), ChainedHash::Options{});
  ASSERT_TRUE(chained.ok());
  FarMapRef<ChainedHash> chained_ref(&*chained, "chained_hash");
  RunShadowEquivalence(chained_ref);
  EXPECT_STREQ(chained_ref.kind(), "chained_hash");

  auto hood = NeighborhoodHash::Create(&client, &env.alloc(),
                                       NeighborhoodHash::Options{});
  ASSERT_TRUE(hood.ok());
  FarMapRef<NeighborhoodHash> hood_ref(&*hood, "neighborhood_hash");
  RunShadowEquivalence(hood_ref);
}

TEST(FarMap, PolymorphicUseThroughBasePointers) {
  // The harness pattern: heterogeneous maps behind FarMap*.
  TestEnv env(SmallFabric(2, 16ull << 20));
  auto& client = env.NewClient();
  auto tree = HtTree::Create(&client, &env.alloc(), HtTree::Options{});
  ASSERT_TRUE(tree.ok());
  ShardedMap::Options sharded_options;
  sharded_options.num_shards = 2;
  auto sharded = ShardedMap::Create(&client, &env.alloc(), sharded_options);
  ASSERT_TRUE(sharded.ok());

  std::vector<FarMap*> maps = {&*tree, &*sharded};
  for (FarMap* map : maps) {
    ASSERT_TRUE(map->Put(42, 4242).ok());
    auto got = map->Get(42);
    ASSERT_TRUE(got.ok()) << map->kind();
    EXPECT_EQ(*got, 4242u);
    EXPECT_TRUE(map->FlushBarrier().ok());
  }
}

TEST(FarMap, DefaultMultiPutRejectsSizeMismatch) {
  TestEnv env(SmallFabric(1));
  auto& client = env.NewClient();
  auto chained =
      ChainedHash::Create(&client, &env.alloc(), ChainedHash::Options{});
  ASSERT_TRUE(chained.ok());
  FarMapRef<ChainedHash> ref(&*chained, "chained_hash");
  const std::vector<uint64_t> keys = {1, 2, 3};
  const std::vector<uint64_t> values = {1};
  EXPECT_EQ(ref.MultiPut(keys, values).code(), StatusCode::kInvalidArgument);
}

// ------------------------- options consolidation --------------------------

TEST(MapOptions, GlobalBudgetBlockWinsOverFlatAlias) {
  TestEnv env(SmallFabric(2, 16ull << 20));
  auto& client = env.NewClient();
  ShardedMap::Options options;
  options.num_shards = 2;
  options.shard.cache.budget_bytes = 1 << 16;
  // Both spellings set: the composable block's value must win.
  options.shard.cache.global_budget_bytes = 1 << 20;
  options.global_cache_budget_bytes = 1 << 18;
  auto map = ShardedMap::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(map.ok());
  ASSERT_NE(map->shared_cache_budget(), nullptr);
  EXPECT_EQ(map->shared_cache_budget()->limit, 1u << 20);
}

TEST(MapOptions, FlatAliasStillSeedsGlobalBudget) {
  TestEnv env(SmallFabric(2, 16ull << 20));
  auto& client = env.NewClient();
  ShardedMap::Options options;
  options.num_shards = 2;
  options.shard.cache.budget_bytes = 1 << 16;
  options.global_cache_budget_bytes = 1 << 18;  // legacy spelling only
  auto map = ShardedMap::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(map.ok());
  ASSERT_NE(map->shared_cache_budget(), nullptr);
  EXPECT_EQ(map->shared_cache_budget()->limit, 1u << 18);
}

TEST(MapOptions, StoredWriteBehindBlockEnablesNoArg) {
  TestEnv env(SmallFabric(1));
  auto& client = env.NewClient();
  HtTree::Options options;
  options.write_behind.max_batch = 8;
  auto tree_result = HtTree::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(tree_result.ok());
  // Move to the final location first (the EnableWriteBehind contract), then
  // arm from the stored block.
  auto tree = std::make_unique<HtTree>(std::move(*tree_result));
  ASSERT_TRUE(tree->EnableWriteBehind().ok());
  ASSERT_TRUE(tree->Put(7, 70).ok());
  ASSERT_TRUE(tree->FlushBarrier().ok());
  auto got = tree->Get(7);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 70u);
}

}  // namespace
}  // namespace fmds
