// Unit tests for the per-node congestion model (DESIGN.md §14): ServiceQueue
// virtual-time FIFO mechanics (service order, bandwidth sharing, bounded
// overflow, drain-to-idle), the MemoryNode front end, and the FarClient
// admission/retry path that surfaces kOverloaded through sync verbs and the
// async Post*/Flush completions.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/status.h"
#include "src/fabric/far_client.h"
#include "src/fabric/memory_node.h"
#include "src/sim/congestion.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

CongestionOptions Congested(uint64_t service_ns = 1'000,
                            uint64_t queue_ops = 4) {
  CongestionOptions options;
  options.enabled = true;
  options.service_ns = service_ns;
  options.queue_ops = queue_ops;
  options.reject_ns = 150;
  return options;
}

// ------------------------------ ServiceQueue ------------------------------

TEST(ServiceQueue, DisabledQueueAdmitsForFree) {
  ServiceQueue queue(CongestionOptions{});  // enabled = false
  for (int i = 0; i < 100; ++i) {
    const AdmissionOutcome outcome = queue.Offer(0, 1, 64);
    EXPECT_TRUE(outcome.admitted);
    EXPECT_EQ(outcome.queue_ns, 0u);
  }
  EXPECT_EQ(queue.DepthOps(), 0u);
  EXPECT_EQ(queue.Sheds(), 0u);
}

TEST(ServiceQueue, IdleArrivalWaitsZero) {
  // The service rate is occupancy, not latency: the first op at an idle
  // node starts immediately, preserving the base model's fixed RTT.
  ServiceQueue queue(Congested(1'000));
  const AdmissionOutcome outcome = queue.Offer(0, 1, 0);
  EXPECT_TRUE(outcome.admitted);
  EXPECT_EQ(outcome.queue_ns, 0u);
}

TEST(ServiceQueue, FifoBacklogGrowsByServiceTime) {
  // Simultaneous arrivals queue in FIFO order: the i-th waits exactly
  // i * service_ns behind its predecessors.
  ServiceQueue queue(Congested(/*service_ns=*/1'000, /*queue_ops=*/64));
  for (uint64_t i = 0; i < 8; ++i) {
    const AdmissionOutcome outcome = queue.Offer(0, 1, 0);
    ASSERT_TRUE(outcome.admitted);
    EXPECT_EQ(outcome.queue_ns, i * 1'000) << "op " << i;
  }
  EXPECT_EQ(queue.DepthOps(), 8u);
  EXPECT_EQ(queue.BacklogNs(), 8u * 1'000);
}

TEST(ServiceQueue, BytesConsumeLinkBandwidth) {
  CongestionOptions options = Congested(/*service_ns=*/100, /*queue_ops=*/64);
  options.per_byte_service_ns = 2.0;
  ServiceQueue queue(options);
  // First op carries 1000 bytes: occupies 100 + 2*1000 ns of front end.
  ASSERT_TRUE(queue.Offer(0, 1, 1'000).admitted);
  // Second op waits behind the whole transfer, not just the op cost.
  const AdmissionOutcome second = queue.Offer(0, 1, 0);
  ASSERT_TRUE(second.admitted);
  EXPECT_EQ(second.queue_ns, 100u + 2'000u);
}

TEST(ServiceQueue, BoundedQueueShedsAndChargesRejects) {
  ServiceQueue queue(Congested(/*service_ns=*/1'000, /*queue_ops=*/4));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.Offer(0, 1, 0).admitted);
  }
  // Queue full: the 5th simultaneous arrival is shed...
  EXPECT_FALSE(queue.Offer(0, 1, 0).admitted);
  EXPECT_EQ(queue.Sheds(), 1u);
  // ...and the bounce itself consumed reject_ns of front-end time, so the
  // backlog a later arrival sees includes it.
  EXPECT_EQ(queue.BacklogNs(), 4u * 1'000 + 150);
  // Batch offers are all-or-nothing: 2 ops into 1 free slot (after one op
  // drains) shed together.
  const AdmissionOutcome batch = queue.Offer(1'200, 2, 0);
  EXPECT_FALSE(batch.admitted);
  EXPECT_EQ(queue.Sheds(), 3u);
}

TEST(ServiceQueue, DrainToIdleRestoresZeroWait) {
  ServiceQueue queue(Congested(/*service_ns=*/1'000, /*queue_ops=*/8));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(queue.Offer(0, 1, 0).admitted);
  }
  EXPECT_EQ(queue.DepthOps(), 8u);
  // Long after the backlog completes, the node is idle again: zero wait,
  // zero depth — fixed-RTT behaviour is fully recovered.
  const AdmissionOutcome late = queue.Offer(100'000, 1, 0);
  ASSERT_TRUE(late.admitted);
  EXPECT_EQ(late.queue_ns, 0u);
  EXPECT_EQ(queue.DepthOps(), 1u);
  EXPECT_EQ(queue.Offer(200'000, 1, 0).queue_ns, 0u);
}

TEST(ServiceQueue, SetOptionsReconfiguresAtRuntime) {
  ServiceQueue queue(CongestionOptions{});
  EXPECT_FALSE(queue.enabled());
  queue.SetOptions(Congested(/*service_ns=*/500, /*queue_ops=*/16));
  EXPECT_TRUE(queue.enabled());
  ASSERT_TRUE(queue.Offer(0, 1, 0).admitted);
  EXPECT_EQ(queue.Offer(0, 1, 0).queue_ns, 500u);
  // Slowdown phase: new work is priced at the new rate; backlog persists.
  CongestionOptions slow = Congested(/*service_ns=*/5'000, /*queue_ops=*/16);
  queue.SetOptions(slow);
  EXPECT_EQ(queue.Offer(0, 1, 0).queue_ns, 2u * 500);
  EXPECT_EQ(queue.Offer(0, 1, 0).queue_ns, 2u * 500 + 5'000);
  // Disable: admission is free again.
  queue.SetOptions(CongestionOptions{});
  EXPECT_EQ(queue.Offer(0, 1, 0).queue_ns, 0u);
}

// ------------------------- MemoryNode + FarClient -------------------------

TEST(Congestion, CongestionOffKeepsFixedRtt) {
  // An enabled-but-idle front end must price a closed-loop single client
  // identically to a congestion-free fabric (queue_ns == 0 throughout).
  FabricOptions plain = SmallFabric(1);
  FabricOptions congested = SmallFabric(1);
  congested.congestion = Congested(/*service_ns=*/100, /*queue_ops=*/256);

  uint64_t elapsed[2];
  FabricOptions* options[] = {&plain, &congested};
  for (int i = 0; i < 2; ++i) {
    TestEnv env(*options[i]);
    auto& client = env.NewClient();
    auto addr = env.alloc().Allocate(64);
    ASSERT_TRUE(addr.ok());
    const uint64_t start = client.clock().now_ns();
    for (int op = 0; op < 50; ++op) {
      ASSERT_TRUE(client.WriteWord(*addr, op).ok());
      ASSERT_TRUE(client.ReadWord(*addr).ok());
    }
    elapsed[i] = client.clock().now_ns() - start;
  }
  EXPECT_EQ(elapsed[0], elapsed[1]);
}

TEST(Congestion, ShedSurfacesOverloadedOnSyncVerb) {
  FabricOptions options = SmallFabric(1);
  options.congestion = Congested(/*service_ns=*/100'000, /*queue_ops=*/4);
  TestEnv env(options);
  auto& client = env.NewClient();  // default retry: max_attempts = 1
  auto addr = env.alloc().Allocate(64);
  ASSERT_TRUE(addr.ok());

  // Fill the node's queue open-loop (other clients' offered load).
  MemoryNode& node = env.fabric().node(0);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(node.OfferLoad(0, 1, 0).admitted);
  }
  const Result<uint64_t> result = client.ReadWord(*addr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOverloaded);
  EXPECT_GE(client.stats().overload_sheds, 1u);
  EXPECT_EQ(client.stats().overload_failures, 1u);
  EXPECT_GE(node.stats().ops_shed.load(), 1u);
}

TEST(Congestion, RetryWithBackoffDrainsAndSucceeds) {
  FabricOptions options = SmallFabric(1);
  options.congestion = Congested(/*service_ns=*/10'000, /*queue_ops=*/4);
  TestEnv env(options);
  auto& client = env.NewClient();
  RetryPolicy retry;
  retry.max_attempts = 16;
  retry.backoff_base_ns = 2'000;
  retry.backoff_max_ns = 500'000;
  retry.deadline_ns = 0;  // unlimited budget
  client.set_retry_policy(retry);
  auto addr = env.alloc().Allocate(64);
  ASSERT_TRUE(addr.ok());

  MemoryNode& node = env.fabric().node(0);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(node.OfferLoad(0, 1, 0).admitted);
  }
  // Backoff advances the client's clock, which advances the node's virtual
  // time, draining the backlog: with enough attempts the op always lands
  // (the gate-d zero-leak property, unit-sized).
  ASSERT_TRUE(client.ReadWord(*addr).ok());
  EXPECT_GE(client.stats().overload_retries, 1u);
  EXPECT_EQ(client.stats().overload_failures, 0u);
}

TEST(Congestion, DeadlineBudgetFailsFast) {
  FabricOptions options = SmallFabric(1);
  options.congestion = Congested(/*service_ns=*/100'000, /*queue_ops=*/4);
  TestEnv env(options);
  auto& client = env.NewClient();
  RetryPolicy retry;
  retry.max_attempts = 100;
  retry.backoff_base_ns = 4'000;
  retry.deadline_ns = 10'000;  // far less than the 400us backlog
  client.set_retry_policy(retry);
  auto addr = env.alloc().Allocate(64);
  ASSERT_TRUE(addr.ok());

  MemoryNode& node = env.fabric().node(0);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(node.OfferLoad(0, 1, 0).admitted);
  }
  const uint64_t start = client.clock().now_ns();
  const Result<uint64_t> result = client.ReadWord(*addr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOverloaded);
  // The op gave up within its budget instead of sleeping past it.
  EXPECT_LE(client.clock().now_ns() - start, 2u * retry.deadline_ns);
}

TEST(Congestion, BatchCompletionCarriesOverloaded) {
  // The async path offers once per op at Flush: a shed op's completion
  // carries kOverloaded while admitted ops in the same doorbell succeed.
  FabricOptions options = SmallFabric(1);
  options.congestion = Congested(/*service_ns=*/100'000, /*queue_ops=*/4);
  TestEnv env(options);
  auto& client = env.NewClient();
  auto addr = env.alloc().Allocate(64);
  ASSERT_TRUE(addr.ok());

  MemoryNode& node = env.fabric().node(0);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(node.OfferLoad(0, 1, 0).admitted);
  }
  // One waiting slot left: the first posted op is admitted, the second is
  // shed at the (single-offer, no-retry) batch admission point.
  client.PostWriteWord(*addr, 1);
  client.PostWriteWord(*addr, 2);
  ASSERT_TRUE(client.Flush().ok());
  std::vector<FarClient::Completion> completions;
  while (auto c = client.Poll()) {
    completions.push_back(*c);
  }
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_TRUE(completions[0].status.ok());
  EXPECT_EQ(completions[1].status.code(), StatusCode::kOverloaded);
  EXPECT_GE(client.stats().overload_sheds, 1u);
}

TEST(Congestion, QueueingDelayExtendsRoundTrip) {
  // A client op that lands behind a backlog pays the queueing delay in its
  // own clock: the modelled round trip stretches with load.
  FabricOptions options = SmallFabric(1);
  options.congestion = Congested(/*service_ns=*/50'000, /*queue_ops=*/64);
  TestEnv env(options);
  auto& client = env.NewClient();
  auto addr = env.alloc().Allocate(64);
  ASSERT_TRUE(addr.ok());

  // Idle baseline round trip.
  uint64_t t0 = client.clock().now_ns();
  ASSERT_TRUE(client.ReadWord(*addr).ok());
  const uint64_t idle_rtt = client.clock().now_ns() - t0;

  // Pile 8 foreign ops onto the node, then measure again.
  MemoryNode& node = env.fabric().node(0);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(node.OfferLoad(client.clock().now_ns(), 1, 0).admitted);
  }
  t0 = client.clock().now_ns();
  ASSERT_TRUE(client.ReadWord(*addr).ok());
  const uint64_t loaded_rtt = client.clock().now_ns() - t0;
  EXPECT_GE(loaded_rtt, idle_rtt + 8u * 50'000);
}

}  // namespace
}  // namespace fmds
