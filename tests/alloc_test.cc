#include <gtest/gtest.h>

#include <set>

#include "tests/test_env.h"

namespace fmds {
namespace {

TEST(AllocTest, NeverReturnsNull) {
  TestEnv env;
  for (int i = 0; i < 100; ++i) {
    auto addr = env.alloc().Allocate(64);
    ASSERT_TRUE(addr.ok());
    EXPECT_NE(*addr, kNullFarAddr);
    EXPECT_TRUE(IsWordAligned(*addr));
  }
}

TEST(AllocTest, AllocationsDoNotOverlap) {
  TestEnv env(SmallFabric(2, 1 << 20));
  std::set<std::pair<FarAddr, FarAddr>> ranges;
  for (int i = 0; i < 500; ++i) {
    const uint64_t size = 8 + (i % 7) * 24;
    auto addr = env.alloc().Allocate(size);
    ASSERT_TRUE(addr.ok());
    for (const auto& [lo, hi] : ranges) {
      EXPECT_TRUE(*addr >= hi || *addr + size <= lo)
          << "overlap at " << *addr;
    }
    ranges.emplace(*addr, *addr + size);
  }
}

TEST(AllocTest, RoundRobinSpreadsAcrossNodes) {
  TestEnv env(SmallFabric(4, 1 << 20));
  std::set<NodeId> nodes;
  for (int i = 0; i < 8; ++i) {
    auto addr = env.alloc().Allocate(128);
    ASSERT_TRUE(addr.ok());
    nodes.insert(env.fabric().Translate(*addr)->node);
  }
  EXPECT_EQ(nodes.size(), 4u);
}

TEST(AllocTest, OnNodePlacement) {
  TestEnv env(SmallFabric(4, 1 << 20));
  for (NodeId node = 0; node < 4; ++node) {
    auto addr = env.alloc().Allocate(64, AllocHint::OnNode(node));
    ASSERT_TRUE(addr.ok());
    EXPECT_EQ(env.fabric().Translate(*addr)->node, node);
  }
  EXPECT_FALSE(env.alloc().Allocate(64, AllocHint::OnNode(9)).ok());
}

TEST(AllocTest, NearPlacementColocates) {
  TestEnv env(SmallFabric(4, 1 << 20));
  auto anchor = env.alloc().Allocate(64, AllocHint::OnNode(2));
  ASSERT_TRUE(anchor.ok());
  auto near = env.alloc().Allocate(64, AllocHint::Near(*anchor));
  ASSERT_TRUE(near.ok());
  EXPECT_EQ(env.fabric().Translate(*near)->node, 2u);
}

TEST(AllocTest, PageAlignment) {
  TestEnv env;
  auto a = env.alloc().Allocate(100);  // misalign the bump pointer
  ASSERT_TRUE(a.ok());
  auto b = env.alloc().Allocate(256, AllocHint::Any(), kPageSize);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b % kPageSize, 0u);
}

TEST(AllocTest, StripedSingleNodeObjects) {
  TestEnv env(StripedFabric(4, kPageSize, 1 << 20));
  // Objects up to one stripe land on a single node.
  for (int i = 0; i < 50; ++i) {
    auto addr = env.alloc().Allocate(1024);
    ASSERT_TRUE(addr.ok());
    std::vector<Fabric::Segment> segs;
    ASSERT_TRUE(env.fabric().Segments(*addr, 1024, segs).ok());
    EXPECT_EQ(segs.size(), 1u);
  }
  // Larger than a stripe fails for node placement...
  EXPECT_FALSE(env.alloc().Allocate(2 * kPageSize).ok());
  // ...but works as a contiguous (striped) allocation.
  auto big = env.alloc().Allocate(2 * kPageSize, AllocHint::Contiguous());
  ASSERT_TRUE(big.ok());
}

TEST(AllocTest, QuarantineDelaysReuse) {
  TestEnv env;
  auto a = env.alloc().Allocate(64);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(env.alloc().Free(*a, 64).ok());
  // Not reused immediately...
  auto b = env.alloc().Allocate(64);
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*b, *a);
  // ...nor after one epoch...
  env.alloc().AdvanceEpoch();
  auto c = env.alloc().Allocate(64);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(*c, *a);
  // ...but after two epochs the block comes back.
  env.alloc().AdvanceEpoch();
  auto d = env.alloc().Allocate(64);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, *a);
}

TEST(AllocTest, FreeNullRejected) {
  TestEnv env;
  EXPECT_FALSE(env.alloc().Free(kNullFarAddr, 8).ok());
}

TEST(AllocTest, ExhaustionReported) {
  FabricOptions tiny;
  tiny.num_nodes = 1;
  tiny.node_capacity = 2 * kPageSize;
  TestEnv env(tiny);
  // Drain the node.
  while (env.alloc().Allocate(1024).ok()) {
  }
  auto last = env.alloc().Allocate(1024);
  EXPECT_EQ(last.status().code(), StatusCode::kResourceExhausted);
}

TEST(AllocTest, ZeroSizeAndBadAlignmentRejected) {
  TestEnv env;
  EXPECT_FALSE(env.alloc().Allocate(0).ok());
  EXPECT_FALSE(env.alloc().Allocate(8, AllocHint::Any(), 3).ok());
}

TEST(AllocTest, TracksByteCounts) {
  TestEnv env;
  const uint64_t before = env.alloc().allocated_bytes();
  ASSERT_TRUE(env.alloc().Allocate(100).ok());  // rounds to 104
  EXPECT_EQ(env.alloc().allocated_bytes() - before, 104u);
}

}  // namespace
}  // namespace fmds
