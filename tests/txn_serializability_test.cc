// Randomized serializability checker for optimistic transactions.
//
// N threads run M transactions each over a small hot key set (every writer
// is an RMW: it reads each key it writes first, inside the txn). Committed
// transactions record their operations — (key, observed value, written
// value) — with globally unique written values, so the history itself
// identifies which write every read observed.
//
// The checker then verifies the committed transactions admit a serial
// order:
//   1. Aborted-write invisibility: every observed value is the initial
//      value or the write of a *committed* transaction.
//   2. No lost updates: per key, no two committed writers observed the same
//      value (each version is overwritten at most once). This also orders
//      each key's committed writes into a single version chain rooted at
//      the initial value.
//   3. Precedence graph acyclicity: WR edges (T observed U's write: U -> T)
//      and RW edges (T observed a version that W overwrote: T -> W); WW
//      edges are implied by the chain plus RMW reads. A cycle would mean no
//      serial order explains the history.
//   4. Final state: the far value of every key is the tail of its chain.
//
// Every run prints/carries its seed, so a sanitizer hit or checker failure
// replays exactly (geometry is deterministic given the seed).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/core/sharded_map.h"
#include "src/core/txn.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

struct OpRec {
  uint64_t key = 0;
  uint64_t observed = 0;
  bool wrote = false;
  uint64_t written = 0;
};

struct TxnRec {
  std::vector<OpRec> ops;
};

struct HistoryConfig {
  uint32_t threads = 3;
  int txns_per_thread = 12;
  uint64_t keys = 8;
  uint32_t shards = 4;
  uint32_t nodes = 2;
  // Concurrent splitter thread forcing table splits under the txns.
  int splits = 0;
};

// Written values are tagged so they can never collide with the initial
// values (the key itself, < 2^32).
constexpr uint64_t kWriteTag = 1ull << 63;
constexpr int kInitial = -1;

uint64_t UniqueValue(uint32_t thread, uint64_t counter) {
  return kWriteTag | (static_cast<uint64_t>(thread + 1) << 32) | counter;
}

// Verifies the committed history; EXPECTs carry the enclosing SCOPED_TRACE.
void CheckHistory(const std::vector<TxnRec>& txns, ShardedMap* map,
                  uint64_t keys) {
  // value identity per key: (key, value) -> writer txn index.
  std::unordered_map<uint64_t, std::unordered_map<uint64_t, int>> writer_of;
  for (uint64_t k = 0; k < keys; ++k) {
    writer_of[k][k] = kInitial;  // pre-populated initial value
  }
  for (size_t t = 0; t < txns.size(); ++t) {
    for (const OpRec& op : txns[t].ops) {
      if (op.wrote) {
        auto [it, inserted] =
            writer_of[op.key].emplace(op.written, static_cast<int>(t));
        ASSERT_TRUE(inserted) << "duplicate written value " << op.written;
      }
    }
  }

  // Per key: observed-value -> overwriting txn. A duplicate is a lost
  // update (two committed RMWs based their write on the same version).
  std::unordered_map<uint64_t, std::unordered_map<uint64_t, int>> overwriter;
  for (size_t t = 0; t < txns.size(); ++t) {
    for (const OpRec& op : txns[t].ops) {
      if (!op.wrote) {
        continue;
      }
      auto [it, inserted] =
          overwriter[op.key].emplace(op.observed, static_cast<int>(t));
      EXPECT_TRUE(inserted)
          << "LOST UPDATE on key " << op.key << ": txns " << it->second
          << " and " << t << " both overwrote value " << op.observed;
    }
  }

  const size_t n = txns.size();
  std::vector<std::vector<int>> adj(n);
  for (size_t t = 0; t < n; ++t) {
    for (const OpRec& op : txns[t].ops) {
      // 1. Aborted-write invisibility: the observed value must have a
      // committed (or initial) writer.
      const auto kv = writer_of.find(op.key);
      ASSERT_NE(kv, writer_of.end());
      const auto w = kv->second.find(op.observed);
      ASSERT_NE(w, kv->second.end())
          << "txn " << t << " observed value " << op.observed << " of key "
          << op.key << " that no committed txn wrote (aborted write leaked?)";
      // WR: the writer of the observed version precedes the reader.
      if (w->second != kInitial && w->second != static_cast<int>(t)) {
        adj[w->second].push_back(static_cast<int>(t));
      }
      // RW: the reader precedes whoever overwrote the observed version.
      const auto ow = overwriter[op.key].find(op.observed);
      if (ow != overwriter[op.key].end() &&
          ow->second != static_cast<int>(t)) {
        adj[t].push_back(ow->second);
      }
    }
  }

  // 3. Cycle detection (iterative DFS, 3 colors).
  std::vector<uint8_t> color(n, 0);
  for (size_t root = 0; root < n; ++root) {
    if (color[root] != 0) {
      continue;
    }
    std::vector<std::pair<int, size_t>> stack{{static_cast<int>(root), 0}};
    color[root] = 1;
    while (!stack.empty()) {
      auto& [node, edge] = stack.back();
      if (edge < adj[node].size()) {
        const int next = adj[node][edge++];
        if (color[next] == 1) {
          FAIL() << "PRECEDENCE CYCLE through txns " << node << " and "
                 << next << ": committed history is not serializable";
        }
        if (color[next] == 0) {
          color[next] = 1;
          stack.emplace_back(next, 0);
        }
      } else {
        color[node] = 2;
        stack.pop_back();
      }
    }
  }

  // 2b + 4. Chain completeness and final state: follow each key's version
  // chain from the initial value; it must cover every committed write and
  // end at the key's far value.
  for (uint64_t k = 0; k < keys; ++k) {
    size_t writes = 0;
    for (const TxnRec& txn : txns) {
      for (const OpRec& op : txn.ops) {
        writes += (op.wrote && op.key == k) ? 1 : 0;
      }
    }
    uint64_t cur = k;  // initial value
    size_t steps = 0;
    while (true) {
      const auto ow = overwriter[k].find(cur);
      if (ow == overwriter[k].end()) {
        break;
      }
      // The overwriter's written value for this key.
      uint64_t next = cur;
      for (const OpRec& op : txns[ow->second].ops) {
        if (op.key == k && op.wrote) {
          next = op.written;
        }
      }
      ASSERT_NE(next, cur);
      cur = next;
      ++steps;
      ASSERT_LE(steps, writes) << "version chain of key " << k << " loops";
    }
    EXPECT_EQ(steps, writes)
        << "key " << k << ": " << writes - steps
        << " committed write(s) unreachable from the initial version";
    auto v = map->Get(k);
    ASSERT_TRUE(v.ok()) << "key " << k;
    EXPECT_EQ(*v, cur) << "final far value of key " << k
                       << " is not the chain tail";
  }
}

void RunHistory(uint64_t seed, const HistoryConfig& cfg) {
  SCOPED_TRACE(::testing::Message() << "seed=" << seed);
  TestEnv env(SmallFabric(cfg.nodes, 32ull << 20));
  std::vector<FarClient*> clients;
  for (uint32_t t = 0; t < cfg.threads + 1; ++t) {
    clients.push_back(&env.NewClient());
  }
  ShardedMap::Options options;
  options.num_shards = cfg.shards;
  options.shard.buckets_per_table = cfg.splits > 0 ? 16 : 64;
  auto root = ShardedMap::Create(clients[0], &env.alloc(), options);
  ASSERT_TRUE(root.ok());
  for (uint64_t k = 0; k < cfg.keys; ++k) {
    ASSERT_TRUE(root->Put(k, k).ok());  // initial value = the key
  }
  std::vector<std::unique_ptr<ShardedMap>> maps;
  for (uint32_t t = 0; t < cfg.threads; ++t) {
    auto m = ShardedMap::Attach(clients[t + 1], &env.alloc(),
                                root->directory(), options);
    ASSERT_TRUE(m.ok());
    maps.push_back(std::make_unique<ShardedMap>(std::move(m).value()));
  }

  std::vector<std::vector<TxnRec>> histories(cfg.threads);
  auto worker = [&](uint32_t t) {
    ShardedMap& map = *maps[t];
    Rng rng(Mix64(seed) ^ (0x9e3779b97f4a7c15ull * (t + 1)));
    TxnOptions topt;
    topt.max_attempts = 512;
    topt.backoff_base_us = 2;
    topt.seed = seed ^ (t + 1);
    uint64_t counter = 0;
    for (int i = 0; i < cfg.txns_per_thread; ++i) {
      const uint64_t kind = rng.NextBelow(10);
      std::vector<OpRec> attempt;
      Status s = RunTxn(&map, topt, [&](Txn& txn) -> Status {
        attempt.clear();
        // 2-4 distinct keys per txn (bounded by the key-space size).
        const size_t nk =
            std::min<size_t>(2 + rng.NextBelow(3), cfg.keys);
        std::vector<uint64_t> picked;
        while (picked.size() < nk) {
          const uint64_t k = rng.NextBelow(cfg.keys);
          bool dup = false;
          for (uint64_t other : picked) {
            dup |= other == k;
          }
          if (!dup) {
            picked.push_back(k);
          }
        }
        // Read phase: every txn reads all its keys first (RMW discipline —
        // the checker's chain construction depends on it). Half the txns
        // read through the batched MultiGet path.
        if (rng.NextBool(0.5)) {
          auto values = txn.MultiGet(picked);
          for (size_t j = 0; j < picked.size(); ++j) {
            if (!values[j].ok()) {
              return values[j].status();
            }
            attempt.push_back({picked[j], *values[j], false, 0});
          }
        } else {
          for (uint64_t k : picked) {
            auto v = txn.Get(k);
            if (!v.ok()) {
              return v.status();
            }
            attempt.push_back({k, *v, false, 0});
          }
        }
        // Write phase. kind 0-1: read-only snapshot. kind 2-4: single-key
        // RMW. Otherwise: multi-key RMW over the whole read set.
        const size_t writes = kind < 2 ? 0 : (kind < 5 ? 1 : picked.size());
        for (size_t j = 0; j < writes; ++j) {
          attempt[j].wrote = true;
          attempt[j].written = UniqueValue(t, counter++);
          FMDS_RETURN_IF_ERROR(txn.Put(attempt[j].key, attempt[j].written));
        }
        return OkStatus();
      });
      if (s.ok()) {
        histories[t].push_back(TxnRec{std::move(attempt)});
      } else {
        // Retry budget exhausted under contention is legal; anything else
        // is a real failure.
        ASSERT_EQ(s.code(), StatusCode::kAborted) << s.ToString();
      }
    }
  };

  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < cfg.threads; ++t) {
    threads.emplace_back(worker, t);
  }
  if (cfg.splits > 0) {
    threads.emplace_back([&] {
      Rng rng(Mix64(seed) + 1);
      for (int i = 0; i < cfg.splits; ++i) {
        const uint64_t k = rng.NextBelow(cfg.keys);
        Status s = root->shard(root->ShardOf(k)).SplitTableOf(k);
        ASSERT_TRUE(s.ok()) << s.ToString();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  std::vector<TxnRec> committed;
  for (auto& h : histories) {
    for (auto& txn : h) {
      committed.push_back(std::move(txn));
    }
  }
  CheckHistory(committed, &*root, cfg.keys);

  // The harness only proves something if txns actually commit.
  EXPECT_GT(committed.size(), 0u);
}

TEST(TxnSerializabilityTest, FixedSeedSweep) {
  // 200 independent multi-threaded histories with pinned seeds — the bulk
  // of the coverage, and deterministic geometry for replay (thread
  // interleaving still varies run to run, which is the point under TSan).
  HistoryConfig cfg;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    RunHistory(seed, cfg);
    if (HasFatalFailure()) {
      return;
    }
  }
}

TEST(TxnSerializabilityTest, FixedSeedSweepWithSplits) {
  // Splits keep freezing and rewriting the tables under the transactions.
  HistoryConfig cfg;
  cfg.splits = 6;
  for (uint64_t seed = 1000; seed < 1020; ++seed) {
    RunHistory(seed, cfg);
    if (HasFatalFailure()) {
      return;
    }
  }
}

TEST(TxnSerializabilityTest, HighContentionSingleBucketPair) {
  // Two keys, every txn touches both: the worst case for OCC. All commits
  // must still form a serial order and the retry loop must make progress.
  HistoryConfig cfg;
  cfg.keys = 2;
  cfg.threads = 4;
  cfg.txns_per_thread = 10;
  for (uint64_t seed = 3000; seed < 3010; ++seed) {
    RunHistory(seed, cfg);
    if (HasFatalFailure()) {
      return;
    }
  }
}

TEST(TxnSerializabilityTest, RandomizedRun) {
  // One fresh-entropy history per run; the seed is printed so any failure
  // replays by pinning it in RunHistory.
  const uint64_t seed = std::random_device{}();
  std::printf("[ RANDOM   ] txn serializability seed=%llu (replay: "
              "RunHistory(seed, cfg))\n",
              static_cast<unsigned long long>(seed));
  HistoryConfig cfg;
  cfg.threads = 4;
  cfg.txns_per_thread = 25;
  RunHistory(seed, cfg);
}

}  // namespace
}  // namespace fmds
