#include <gtest/gtest.h>

#include "src/core/refreshable_vector.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

RefreshableVector::Options Vec(uint64_t size = 256, uint64_t group = 16) {
  RefreshableVector::Options options;
  options.size = size;
  options.group_size = group;
  return options;
}

TEST(RefreshableTest, ReaderSeesUpdatesAfterRefresh) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto& reader = env.NewClient();
  auto vec_w = RefreshableVector::Create(&writer, &env.alloc(), Vec());
  ASSERT_TRUE(vec_w.ok());
  auto vec_r = RefreshableVector::Attach(&reader, vec_w->header());
  ASSERT_TRUE(vec_r.ok());
  ASSERT_TRUE(
      vec_r->EnableReader(RefreshableVector::RefreshMode::kPollVersions)
          .ok());
  ASSERT_TRUE(vec_w->Update(7, 77).ok());
  // Stale until refreshed — that's the contract.
  EXPECT_EQ(*vec_r->Get(7), 0u);
  ASSERT_TRUE(vec_r->Refresh().ok());
  EXPECT_EQ(*vec_r->Get(7), 77u);
}

TEST(RefreshableTest, RefreshPullsOnlyChangedGroups) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto& reader = env.NewClient();
  auto vec_w = RefreshableVector::Create(&writer, &env.alloc(),
                                         Vec(1024, 64));
  ASSERT_TRUE(vec_w.ok());
  auto vec_r = RefreshableVector::Attach(&reader, vec_w->header());
  ASSERT_TRUE(vec_r.ok());
  ASSERT_TRUE(
      vec_r->EnableReader(RefreshableVector::RefreshMode::kPollVersions)
          .ok());
  ASSERT_TRUE(vec_w->Update(3, 1).ok());   // group 0
  ASSERT_TRUE(vec_w->Update(65, 2).ok());  // group 1
  const auto before = reader.stats();
  ASSERT_TRUE(vec_r->Refresh().ok());
  const auto delta = reader.stats().Delta(before);
  // One version-region read + one rgather of the two dirty groups.
  EXPECT_EQ(delta.far_ops, 2u);
  EXPECT_LT(delta.bytes_read, 1024 * 8u / 2)
      << "refresh must not re-read the whole vector";
  EXPECT_EQ(vec_r->refresh_stats().groups_refreshed, 2u);
  EXPECT_EQ(*vec_r->Get(3), 1u);
  EXPECT_EQ(*vec_r->Get(65), 2u);
}

TEST(RefreshableTest, NoChangesMeansOneAccessPoll) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto& reader = env.NewClient();
  auto vec_w = RefreshableVector::Create(&writer, &env.alloc(), Vec());
  ASSERT_TRUE(vec_w.ok());
  auto vec_r = RefreshableVector::Attach(&reader, vec_w->header());
  ASSERT_TRUE(vec_r.ok());
  ASSERT_TRUE(
      vec_r->EnableReader(RefreshableVector::RefreshMode::kPollVersions)
          .ok());
  const uint64_t before = reader.stats().far_ops;
  ASSERT_TRUE(vec_r->Refresh().ok());
  EXPECT_EQ(reader.stats().far_ops - before, 1u);  // just the version read
}

TEST(RefreshableTest, NotifyModeCostsZeroWhenQuiet) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto& reader = env.NewClient();
  auto vec_w = RefreshableVector::Create(&writer, &env.alloc(), Vec());
  ASSERT_TRUE(vec_w.ok());
  auto vec_r = RefreshableVector::Attach(&reader, vec_w->header());
  ASSERT_TRUE(vec_r.ok());
  ASSERT_TRUE(
      vec_r->EnableReader(RefreshableVector::RefreshMode::kNotify).ok());
  const uint64_t before = reader.stats().far_ops;
  ASSERT_TRUE(vec_r->Refresh().ok());
  EXPECT_EQ(reader.stats().far_ops - before, 0u)
      << "§5.4: notification mode avoids reading version numbers";
  // An update triggers exactly the dirty group's pull.
  ASSERT_TRUE(vec_w->Update(10, 5).ok());
  ASSERT_TRUE(vec_r->Refresh().ok());
  EXPECT_EQ(*vec_r->Get(10), 5u);
}

TEST(RefreshableTest, ScatterUpdateIsOneFarOp) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto vec = RefreshableVector::Create(&writer, &env.alloc(), Vec());
  ASSERT_TRUE(vec.ok());
  const auto before = writer.stats();
  ASSERT_TRUE(vec->UpdateScatter(4, 44).ok());
  const auto delta = writer.stats().Delta(before);
  EXPECT_EQ(delta.far_ops, 1u);
  EXPECT_EQ(delta.messages, 2u);  // element + version in one round trip
  // Multi-writer Update costs two.
  const auto before2 = writer.stats();
  ASSERT_TRUE(vec->Update(4, 45).ok());
  EXPECT_EQ(writer.stats().Delta(before2).far_ops, 2u);
}

TEST(RefreshableTest, AutoModeShiftsToNotificationsAsUpdatesDecay) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto& reader = env.NewClient();
  auto vec_w = RefreshableVector::Create(&writer, &env.alloc(),
                                         Vec(512, 32));
  ASSERT_TRUE(vec_w.ok());
  auto vec_r = RefreshableVector::Attach(&reader, vec_w->header());
  ASSERT_TRUE(vec_r.ok());
  ASSERT_TRUE(
      vec_r->EnableReader(RefreshableVector::RefreshMode::kAuto).ok());
  EXPECT_FALSE(vec_r->refresh_stats().notify_active);
  // Hot phase: many groups change per refresh -> stays polling.
  Rng rng(5);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(vec_w->Update(rng.NextBelow(512), i + 1).ok());
    }
    ASSERT_TRUE(vec_r->Refresh().ok());
  }
  EXPECT_FALSE(vec_r->refresh_stats().notify_active);
  // Converged phase: nothing changes -> shifts to notifications.
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(vec_r->Refresh().ok());
  }
  EXPECT_TRUE(vec_r->refresh_stats().notify_active);
  EXPECT_GT(vec_r->refresh_stats().mode_switches, 0u);
  // Correctness unchanged in notify mode.
  ASSERT_TRUE(vec_w->Update(100, 42).ok());
  ASSERT_TRUE(vec_r->Refresh().ok());
  EXPECT_EQ(*vec_r->Get(100), 42u);
}

TEST(RefreshableTest, AutoModeShiftsBackUnderUpdateStorm) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto& reader = env.NewClient();
  auto vec_w = RefreshableVector::Create(&writer, &env.alloc(),
                                         Vec(512, 32));
  ASSERT_TRUE(vec_w.ok());
  auto vec_r = RefreshableVector::Attach(&reader, vec_w->header());
  ASSERT_TRUE(vec_r.ok());
  ASSERT_TRUE(
      vec_r->EnableReader(RefreshableVector::RefreshMode::kAuto).ok());
  // Quiet -> notify.
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(vec_r->Refresh().ok());
  }
  ASSERT_TRUE(vec_r->refresh_stats().notify_active);
  // Storm: most groups change -> back to polling.
  for (uint64_t i = 0; i < 512; i += 8) {
    ASSERT_TRUE(vec_w->Update(i, i).ok());
  }
  ASSERT_TRUE(vec_r->Refresh().ok());
  EXPECT_FALSE(vec_r->refresh_stats().notify_active);
}

TEST(RefreshableTest, LossWarningFallsBackToFullPoll) {
  TestEnv env;
  auto& writer = env.NewClient();
  ClientOptions tiny;
  tiny.channel_capacity = 2;  // force overflow
  FarClient reader(&env.fabric(), 77, tiny);
  auto vec_w = RefreshableVector::Create(&writer, &env.alloc(),
                                         Vec(256, 16));
  ASSERT_TRUE(vec_w.ok());
  auto vec_r = RefreshableVector::Attach(&reader, vec_w->header());
  ASSERT_TRUE(vec_r.ok());
  ASSERT_TRUE(
      vec_r->EnableReader(RefreshableVector::RefreshMode::kNotify).ok());
  // Blast updates across many groups: channel (capacity 2) overflows.
  for (uint64_t i = 0; i < 256; i += 4) {
    ASSERT_TRUE(vec_w->Update(i, i + 1).ok());
  }
  ASSERT_TRUE(vec_r->Refresh().ok());
  EXPECT_GT(vec_r->refresh_stats().loss_fallbacks, 0u);
  // Despite the loss, the mirror is correct (poll fallback).
  for (uint64_t i = 0; i < 256; i += 4) {
    EXPECT_EQ(*vec_r->Get(i), i + 1);
  }
}

TEST(RefreshableTest, BoundsChecked) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto vec = RefreshableVector::Create(&writer, &env.alloc(), Vec(16, 4));
  ASSERT_TRUE(vec.ok());
  EXPECT_FALSE(vec->Update(16, 1).ok());
  ASSERT_TRUE(vec->EnableReader(
      RefreshableVector::RefreshMode::kPollVersions).ok());
  EXPECT_FALSE(vec->Get(16).ok());
}

TEST(RefreshableTest, RaggedLastGroupHandled) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto& reader = env.NewClient();
  // 100 elements, groups of 16 -> last group has 4.
  auto vec_w = RefreshableVector::Create(&writer, &env.alloc(),
                                         Vec(100, 16));
  ASSERT_TRUE(vec_w.ok());
  auto vec_r = RefreshableVector::Attach(&reader, vec_w->header());
  ASSERT_TRUE(vec_r.ok());
  ASSERT_TRUE(
      vec_r->EnableReader(RefreshableVector::RefreshMode::kPollVersions)
          .ok());
  ASSERT_TRUE(vec_w->Update(99, 999).ok());
  ASSERT_TRUE(vec_r->Refresh().ok());
  EXPECT_EQ(*vec_r->Get(99), 999u);
}

}  // namespace
}  // namespace fmds
