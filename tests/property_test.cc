// Property-based sweeps: the fabric and data structures are run against
// local shadow models under randomized workloads, across parameterized
// geometries (TEST_P).
#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "src/core/far_queue.h"
#include "src/core/ht_tree.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

// ---- Fabric byte-level semantics vs a shadow buffer ----

class FabricShadowTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(FabricShadowTest, RandomReadsWritesMatchShadow) {
  const auto [nodes, stripe] = GetParam();
  FabricOptions options;
  options.num_nodes = nodes;
  options.node_capacity = 1 << 20;
  options.stripe_bytes = stripe;
  TestEnv env(options);
  auto& client = env.NewClient();

  constexpr uint64_t kRegion = 64 * 1024;
  std::vector<std::byte> shadow(kRegion, std::byte{0});
  Rng rng(nodes * 131 + stripe);
  for (int op = 0; op < 2000; ++op) {
    const uint64_t offset = rng.NextBelow(kRegion - 1);
    const uint64_t len = 1 + rng.NextBelow(
        std::min<uint64_t>(kRegion - offset, 300));
    if (rng.NextBool(0.5)) {
      std::vector<std::byte> data(len);
      for (auto& b : data) {
        b = static_cast<std::byte>(rng.Next());
      }
      ASSERT_TRUE(client.Write(offset, data).ok());
      std::copy(data.begin(), data.end(), shadow.begin() + offset);
    } else {
      std::vector<std::byte> got(len);
      ASSERT_TRUE(client.Read(offset, got).ok());
      for (uint64_t i = 0; i < len; ++i) {
        ASSERT_EQ(got[i], shadow[offset + i])
            << "offset " << offset + i << " nodes=" << nodes
            << " stripe=" << stripe;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FabricShadowTest,
    ::testing::Values(std::make_tuple(1u, uint64_t{0}),
                      std::make_tuple(4u, uint64_t{0}),
                      std::make_tuple(2u, kPageSize),
                      std::make_tuple(8u, kPageSize),
                      std::make_tuple(4u, 4 * kPageSize)));

// ---- Segments(): exact, ordered, disjoint cover ----

class SegmentsPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SegmentsPropertyTest, SegmentsTileTheRange) {
  FabricOptions options;
  options.num_nodes = GetParam();
  options.node_capacity = 1 << 20;
  options.stripe_bytes = kPageSize;
  TestEnv env(options);
  Rng rng(GetParam() * 7);
  for (int trial = 0; trial < 500; ++trial) {
    const uint64_t total = env.fabric().total_capacity();
    const uint64_t addr = rng.NextBelow(total - 2);
    const uint64_t len = 1 + rng.NextBelow(
        std::min<uint64_t>(total - addr, 5 * kPageSize));
    std::vector<Fabric::Segment> segs;
    ASSERT_TRUE(env.fabric().Segments(addr, len, segs).ok());
    uint64_t covered = 0;
    FarAddr cursor = addr;
    for (const auto& seg : segs) {
      EXPECT_EQ(seg.addr, cursor) << "segments must tile in order";
      const auto loc = env.fabric().Translate(seg.addr);
      ASSERT_TRUE(loc.ok());
      EXPECT_EQ(loc->node, seg.node);
      EXPECT_EQ(loc->offset, seg.offset);
      covered += seg.len;
      cursor += seg.len;
    }
    EXPECT_EQ(covered, len);
  }
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, SegmentsPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 8u));

// ---- FarQueue vs std::deque (single-threaded, exact FIFO incl. wraps) ----

class QueueShadowTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>> {};

TEST_P(QueueShadowTest, MatchesDequeAcrossWraps) {
  const auto [capacity, bias] = GetParam();
  TestEnv env;
  auto& client = env.NewClient();
  FarQueue::Options options;
  options.capacity = capacity;
  options.max_clients = 2;
  auto queue = FarQueue::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(queue.ok());
  std::deque<uint64_t> shadow;
  Rng rng(capacity * 3 + bias);
  uint64_t next_value = 1;
  for (int op = 0; op < 20000; ++op) {
    // bias/10 = enqueue probability; drains and fills both get exercised.
    if (rng.NextBelow(10) < bias) {
      const Status status = queue->Enqueue(next_value);
      if (status.ok()) {
        shadow.push_back(next_value);
        ++next_value;
      } else {
        ASSERT_EQ(status.code(), StatusCode::kResourceExhausted);
        // Conservative full: shadow occupancy must be near capacity.
        ASSERT_GE(shadow.size() + 2 * options.max_clients + 2, capacity);
      }
    } else {
      auto value = queue->Dequeue();
      if (value.ok()) {
        ASSERT_FALSE(shadow.empty());
        ASSERT_EQ(*value, shadow.front());
        shadow.pop_front();
      } else {
        ASSERT_EQ(value.status().code(), StatusCode::kNotFound);
        ASSERT_TRUE(shadow.empty());
      }
    }
  }
  // Drain and compare the tail.
  while (!shadow.empty()) {
    auto value = queue->Dequeue();
    ASSERT_TRUE(value.ok());
    ASSERT_EQ(*value, shadow.front());
    shadow.pop_front();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, QueueShadowTest,
    ::testing::Combine(::testing::Values<uint64_t>(16, 64, 256),
                       ::testing::Values<uint64_t>(3, 5, 7)));

// ---- Allocator: random alloc/free cycles never overlap live blocks ----

class AllocatorPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(AllocatorPropertyTest, LiveBlocksNeverOverlap) {
  const auto [nodes, stripe] = GetParam();
  FabricOptions options;
  options.num_nodes = nodes;
  options.node_capacity = 4 << 20;
  options.stripe_bytes = stripe;
  TestEnv env(options);
  Rng rng(nodes + stripe);
  struct Block {
    FarAddr addr;
    uint64_t size;
  };
  std::map<FarAddr, Block> live;  // keyed by addr
  for (int op = 0; op < 3000; ++op) {
    if (live.empty() || rng.NextBool(0.6)) {
      const uint64_t size = 8ull << rng.NextBelow(8);  // 8..1024
      const uint64_t alignment = 8ull << rng.NextBelow(4);
      auto addr = env.alloc().Allocate(size, AllocHint::Any(), alignment);
      if (!addr.ok()) {
        continue;  // node full is legitimate
      }
      EXPECT_EQ(*addr % alignment, 0u);
      // Check non-overlap with neighbors.
      auto next = live.lower_bound(*addr);
      if (next != live.end()) {
        EXPECT_LE(*addr + size, next->second.addr);
      }
      if (next != live.begin()) {
        auto prev = std::prev(next);
        EXPECT_LE(prev->second.addr + prev->second.size, *addr);
      }
      live[*addr] = Block{*addr, size};
    } else {
      auto victim = live.begin();
      std::advance(victim, rng.NextBelow(live.size()));
      ASSERT_TRUE(
          env.alloc().Free(victim->second.addr, victim->second.size).ok());
      live.erase(victim);
      if (rng.NextBool(0.1)) {
        env.alloc().AdvanceEpoch();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, AllocatorPropertyTest,
    ::testing::Values(std::make_tuple(1u, uint64_t{0}),
                      std::make_tuple(4u, uint64_t{0}),
                      std::make_tuple(4u, kPageSize)));

// ---- HtTree vs std::map under hostile geometry + Zipf keys ----

class HtTreeZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(HtTreeZipfTest, SkewedWorkloadMatchesReference) {
  const double theta = GetParam();
  TestEnv env(SmallFabric(1, 128ull << 20));
  auto& client = env.NewClient();
  HtTree::Options options;
  options.buckets_per_table = 32;  // force frequent splits
  options.max_chain = 3;
  auto map = HtTree::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(map.ok());
  std::map<uint64_t, uint64_t> reference;
  ZipfGenerator zipf(500, theta, 77);
  Rng rng(99);
  for (int op = 0; op < 5000; ++op) {
    const uint64_t key = zipf.Next() + 1;
    const int kind = static_cast<int>(rng.NextBelow(10));
    if (kind < 7) {
      const uint64_t value = rng.Next() | 1;
      ASSERT_TRUE(map->Put(key, value).ok());
      reference[key] = value;
    } else if (kind < 8) {
      ASSERT_TRUE(map->Remove(key).ok());
      reference.erase(key);
    } else {
      auto got = map->Get(key);
      auto it = reference.find(key);
      if (it == reference.end()) {
        ASSERT_EQ(got.status().code(), StatusCode::kNotFound);
      } else {
        ASSERT_TRUE(got.ok());
        ASSERT_EQ(*got, it->second);
      }
    }
  }
  for (const auto& [key, value] : reference) {
    ASSERT_EQ(*map->Get(key), value) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Skews, HtTreeZipfTest,
                         ::testing::Values(0.0, 0.7, 0.99));

}  // namespace
}  // namespace fmds
