#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "src/common/bytes.h"
#include "src/common/hash.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/table.h"

namespace fmds {
namespace {

// ------------------------------- Status ----------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = NotFound("key 17 missing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.ToString(), "NOT_FOUND: key 17 missing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= static_cast<int>(StatusCode::kUnimplemented);
       ++code) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(code)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status(StatusCode::kUnavailable, "nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(result.value_or(7), 7);
}

Result<int> Doubler(Result<int> in) {
  FMDS_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_FALSE(Doubler(Status(StatusCode::kInternal, "x")).ok());
}

// -------------------------------- Rng ------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next();
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  int counts[kBuckets] = {};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    counts[rng.NextBelow(kBuckets)]++;
  }
  for (int bucket : counts) {
    EXPECT_NEAR(bucket, kDraws / kBuckets, kDraws / kBuckets / 5);
  }
}

TEST(ZipfTest, SkewConcentratesMassOnHotKeys) {
  ZipfGenerator zipf(10000, 0.99, 5);
  std::map<uint64_t, int> counts;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    counts[zipf.Next()]++;
  }
  // With theta=0.99 the hottest key takes a large share.
  int top = 0;
  for (const auto& [key, count] : counts) {
    top = std::max(top, count);
  }
  EXPECT_GT(top, kDraws / 20);
  // All draws in range.
  EXPECT_LT(counts.rbegin()->first, 10000u);
}

TEST(ZipfTest, ThetaZeroIsUniformish) {
  ZipfGenerator zipf(100, 0.0, 6);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) {
    counts[zipf.Next()]++;
  }
  for (const auto& [key, count] : counts) {
    EXPECT_LT(count, 3000);  // no key dominates
  }
}

TEST(DiscreteChoiceTest, RespectsWeights) {
  DiscreteChoice choice({0.9, 0.1}, 3);
  int first = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    first += choice.Next() == 0;
  }
  EXPECT_NEAR(first, kDraws * 9 / 10, kDraws / 20);
}

// ------------------------------ Histogram --------------------------------

TEST(LogHistogramTest, BasicStats) {
  LogHistogram hist;
  for (uint64_t v = 1; v <= 1000; ++v) {
    hist.Record(v);
  }
  EXPECT_EQ(hist.count(), 1000u);
  EXPECT_EQ(hist.min(), 1u);
  EXPECT_EQ(hist.max(), 1000u);
  EXPECT_NEAR(hist.mean(), 500.5, 0.01);
  // Log buckets bound the relative error.
  EXPECT_NEAR(static_cast<double>(hist.Percentile(0.5)), 500.0, 500.0 * 0.05);
  EXPECT_NEAR(static_cast<double>(hist.Percentile(0.99)), 990.0,
              990.0 * 0.05);
}

TEST(LogHistogramTest, MergeMatchesCombined) {
  LogHistogram a, b, combined;
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.NextBelow(1 << 20) + 1;
    combined.Record(v);
    (i % 2 == 0 ? a : b).Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_EQ(a.Percentile(0.5), combined.Percentile(0.5));
}

TEST(LogHistogramTest, EmptyIsZero) {
  LogHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.Percentile(0.99), 0u);
  EXPECT_EQ(hist.mean(), 0.0);
}

TEST(LogHistogramTest, ResetClears) {
  LogHistogram hist;
  hist.Record(5);
  hist.Reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.max(), 0u);
}

TEST(LogHistogramTest, ZeroIsFirstClass) {
  // Background far ops cost the client clock nothing; the recorder still
  // histograms them, so zero must record and report exactly.
  LogHistogram hist;
  hist.Record(0);
  hist.Record(0);
  hist.Record(8);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.min(), 0u);
  EXPECT_EQ(hist.max(), 8u);
  EXPECT_EQ(hist.sum(), 8u);
  EXPECT_EQ(hist.Percentile(0.0), 0u);
  EXPECT_EQ(hist.Percentile(0.5), 0u);
  EXPECT_EQ(hist.Percentile(1.0), 8u);
}

TEST(LogHistogramTest, SingleValueAllQuantiles) {
  LogHistogram hist;
  hist.Record(777);
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(hist.Percentile(q), 777u) << "q=" << q;
  }
  EXPECT_EQ(hist.min(), 777u);
  EXPECT_EQ(hist.max(), 777u);
}

TEST(LogHistogramTest, QuantileBoundsAreMinAndMax) {
  LogHistogram hist;
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    hist.Record(rng.NextBelow(1 << 16) + 3);
  }
  // q=0 / q=1 are exact even though interior quantiles are bucketed, and
  // out-of-range q clamps rather than misbehaving.
  EXPECT_EQ(hist.Percentile(0.0), hist.min());
  EXPECT_EQ(hist.Percentile(1.0), hist.max());
  EXPECT_EQ(hist.Percentile(-0.5), hist.min());
  EXPECT_EQ(hist.Percentile(1.5), hist.max());
  // Interior quantiles stay within the recorded range and are monotone.
  uint64_t prev = 0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const uint64_t v = hist.Percentile(q);
    EXPECT_GE(v, hist.min());
    EXPECT_LE(v, hist.max());
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(LogHistogramTest, MergeEmptyAndCrossBucket) {
  LogHistogram a, b;
  // Merging an empty histogram is a no-op (and min does not get polluted
  // by the empty side's sentinel).
  a.Record(100);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 100u);
  EXPECT_EQ(a.max(), 100u);
  // Merging into an empty histogram adopts the other side exactly.
  b.Merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.min(), 100u);
  // Cross-bucket merge: values in far-apart log buckets keep exact
  // count/min/max/sum and a sane median.
  LogHistogram lo, hi;
  lo.Record(1);
  lo.Record(2);
  hi.Record(1 << 20);
  lo.Merge(hi);
  EXPECT_EQ(lo.count(), 3u);
  EXPECT_EQ(lo.min(), 1u);
  EXPECT_EQ(lo.max(), 1u << 20);
  EXPECT_EQ(lo.sum(), 3u + (1u << 20));
  EXPECT_EQ(lo.Percentile(0.5), 2u);
}

TEST(RunningStatTest, MeanAndStddev) {
  RunningStat stat;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stat.Record(v);
  }
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_NEAR(stat.stddev(), 2.138, 0.001);
  EXPECT_EQ(stat.min(), 2.0);
  EXPECT_EQ(stat.max(), 9.0);
}

// -------------------------------- Table ----------------------------------

TEST(TableTest, RendersAlignedRows) {
  Table table({"name", "value"});
  table.AddRow({"alpha", Table::Cell(uint64_t{42})});
  table.AddRow({"b", Table::Cell(3.14159, 2)});
  std::ostringstream os;
  table.Print(os, "demo");
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_NE(out.find("name |"), std::string::npos);  // right-aligned header
}

// -------------------------------- Bytes ----------------------------------

TEST(BytesTest, RoundTripPod) {
  struct Pod {
    uint64_t a;
    uint32_t b;
    uint32_t c;
  };
  Pod in{7, 8, 9};
  Pod out{};
  auto bytes = AsConstBytes(in);
  std::memcpy(AsBytes(out).data(), bytes.data(), bytes.size());
  EXPECT_EQ(out.a, 7u);
  EXPECT_EQ(out.b, 8u);
  EXPECT_EQ(out.c, 9u);
}

TEST(BytesTest, LoadStoreAtOffset) {
  std::vector<std::byte> buf(32);
  StoreAs<uint64_t>(buf, 0xdeadbeef, 8);
  EXPECT_EQ(LoadAs<uint64_t>(buf, 8), 0xdeadbeefull);
}

// -------------------------------- Hash -----------------------------------

TEST(HashTest, Mix64Avalanches) {
  // Flipping one input bit should flip ~half the output bits.
  const uint64_t base = Mix64(12345);
  int total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const uint64_t flipped = Mix64(12345ull ^ (1ull << bit));
    total_flips += __builtin_popcountll(base ^ flipped);
  }
  EXPECT_NEAR(total_flips / 64.0, 32.0, 6.0);
}

TEST(HashTest, Fnv1aDiffers) {
  EXPECT_NE(Fnv1a("hello"), Fnv1a("world"));
  EXPECT_EQ(Fnv1a("same"), Fnv1a("same"));
}

}  // namespace
}  // namespace fmds
