// Edge cases and hostile inputs for the fabric layer: bad addresses,
// boundary-straddling operations, huge transfers, indirection through
// corrupt pointers, and accounting invariants.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/common/bytes.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

TEST(FabricEdgeTest, OutOfRangeAddressesRejectedEverywhere) {
  TestEnv env(SmallFabric(2, 1 << 20));
  auto& client = env.NewClient();
  const FarAddr beyond = env.fabric().total_capacity();
  uint64_t word;
  EXPECT_FALSE(client.ReadWord(beyond).ok());
  EXPECT_FALSE(client.WriteWord(beyond, 1).ok());
  EXPECT_FALSE(client.CompareSwap(beyond, 0, 1).ok());
  EXPECT_FALSE(client.FetchAdd(beyond, 1).ok());
  EXPECT_FALSE(client.Read(beyond - 8, AsBytes(word)).ok() &&
               client.Read(beyond - 4, AsBytes(word)).ok());
  // A range that starts valid but runs off the end.
  std::vector<std::byte> buf(64);
  EXPECT_FALSE(client.Read(beyond - 32, buf).ok());
  EXPECT_FALSE(client.Write(beyond - 32, buf).ok());
}

TEST(FabricEdgeTest, ZeroLengthOpsAreNoops) {
  TestEnv env;
  auto& client = env.NewClient();
  const ClientStats before = client.stats();
  EXPECT_TRUE(client.Read(64, {}).ok());
  EXPECT_TRUE(client.Write(64, {}).ok());
  // Even empty ops are issued (and counted): the round trip happens.
  EXPECT_EQ(client.stats().Delta(before).far_ops, 2u);
}

TEST(FabricEdgeTest, IndirectionThroughGarbagePointerFailsCleanly) {
  TestEnv env(SmallFabric(1, 1 << 20));
  auto& client = env.NewClient();
  // Pointer word contains an out-of-fabric address.
  ASSERT_TRUE(client.WriteWord(64, 0xdeadbeef00ull).ok());
  uint64_t out;
  auto result = client.Load0(64, AsBytes(out));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
  // The fabric word is untouched and usable afterwards.
  EXPECT_EQ(*client.ReadWord(64), 0xdeadbeef00ull);
}

TEST(FabricEdgeTest, IndirectAddMisalignedTargetRejected) {
  TestEnv env;
  auto& client = env.NewClient();
  ASSERT_TRUE(client.WriteWord(64, 257).ok());  // misaligned target
  EXPECT_FALSE(client.Add0(64, 1).ok());
}

TEST(FabricEdgeTest, WordAtomicsSurviveOverlappingRangeWrites) {
  // A byte-range write overlapping a word being CAS'd concurrently must
  // not tear the word (partial-word RMW in MemoryNode).
  TestEnv env;
  auto& a = env.NewClient();
  auto& b = env.NewClient();
  ASSERT_TRUE(a.WriteWord(64, 0).ok());
  std::atomic<bool> stop{false};
  std::thread adder([&] {
    while (!stop.load()) {
      ASSERT_TRUE(a.FetchAdd(64, 1).ok());
    }
  });
  // Concurrent unaligned writes next to (not on) the counter word.
  std::vector<std::byte> noise(13, std::byte{0xAB});
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(b.Write(72 + (i % 5), noise).ok());
  }
  stop.store(true);
  adder.join();
  // The counter word only ever saw increments: its value equals the number
  // of successful FetchAdds (monotone, no torn values observable here, but
  // the neighboring bytes must hold the last noise pattern).
  std::vector<std::byte> check(13);
  ASSERT_TRUE(b.Read(72 + 4, check).ok());
  EXPECT_EQ(check[0], std::byte{0xAB});
}

TEST(FabricEdgeTest, SixtyFourMegabyteTransfer) {
  FabricOptions options = SmallFabric(4, 32 << 20);
  options.stripe_bytes = kPageSize;
  TestEnv env(options);
  auto& client = env.NewClient();
  const uint64_t bytes = 64ull << 20;
  std::vector<uint64_t> data(bytes / 8);
  for (size_t i = 0; i < data.size(); i += 1024) {
    data[i] = i;
  }
  ASSERT_TRUE(
      client.Write(0, std::as_bytes(std::span<const uint64_t>(data))).ok());
  std::vector<uint64_t> out(bytes / 8);
  ASSERT_TRUE(
      client.Read(0, std::as_writable_bytes(std::span<uint64_t>(out))).ok());
  for (size_t i = 0; i < data.size(); i += 1024) {
    ASSERT_EQ(out[i], data[i]);
  }
  // Striped across 4 nodes: every node serviced a share.
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_GT(env.fabric().node(n).stats().bytes_in.load(), bytes / 8);
  }
}

TEST(FabricEdgeTest, PerNodeStatsAccumulate) {
  TestEnv env(SmallFabric(2, 1 << 20));
  auto& client = env.NewClient();
  const uint64_t node1_base = 1 << 20;
  ASSERT_TRUE(client.WriteWord(64, 1).ok());           // node 0
  ASSERT_TRUE(client.WriteWord(node1_base + 64, 1).ok());  // node 1
  ASSERT_TRUE(client.ReadWord(node1_base + 64).ok());
  EXPECT_EQ(env.fabric().node(0).stats().ops_serviced.load(), 1u);
  EXPECT_EQ(env.fabric().node(1).stats().ops_serviced.load(), 2u);
}

TEST(FabricEdgeTest, ClientStatsDeltaAndToString) {
  TestEnv env;
  auto& client = env.NewClient();
  const ClientStats before = client.stats();
  ASSERT_TRUE(client.WriteWord(64, 1).ok());
  const ClientStats delta = client.stats().Delta(before);
  EXPECT_EQ(delta.far_ops, 1u);
  EXPECT_NE(delta.ToString().find("far_ops=1"), std::string::npos);
  ClientStats sum = before;
  sum.Add(delta);
  EXPECT_EQ(sum.far_ops, client.stats().far_ops);
}

TEST(FabricEdgeTest, FaaiNegativeDeltaMovesPointerBackwards) {
  TestEnv env;
  auto& client = env.NewClient();
  ASSERT_TRUE(client.WriteWord(64, 512).ok());
  ASSERT_TRUE(client.WriteWord(504, 42).ok());
  uint64_t out = 0;
  auto old = client.Faai(64, -8, AsBytes(out));
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(*old, 512u);
  EXPECT_EQ(*client.ReadWord(64), 504u);
  // Next faai reads the slot the pointer backed into.
  ASSERT_TRUE(client.Faai(64, -8, AsBytes(out)).ok());
  EXPECT_EQ(out, 42u);
}

TEST(FabricEdgeTest, FenceIsOrderedNoopWithAccounting) {
  TestEnv env;
  auto& client = env.NewClient();
  const uint64_t near_before = client.stats().near_ops;
  client.Fence();
  EXPECT_EQ(client.stats().near_ops, near_before + 1);
}

TEST(FabricEdgeTest, ManySmallNodes) {
  FabricOptions options;
  options.num_nodes = 64;
  options.node_capacity = 64 * kPageSize;
  options.stripe_bytes = kPageSize;
  TestEnv env(options);
  auto& client = env.NewClient();
  // Touch one word on every node.
  for (NodeId n = 0; n < 64; ++n) {
    const FarAddr addr = static_cast<FarAddr>(n) * kPageSize + 8;
    ASSERT_TRUE(client.WriteWord(addr, n + 1).ok());
  }
  for (NodeId n = 0; n < 64; ++n) {
    const FarAddr addr = static_cast<FarAddr>(n) * kPageSize + 8;
    EXPECT_EQ(*client.ReadWord(addr), n + 1);
    EXPECT_GE(env.fabric().node(n).stats().ops_serviced.load(), 2u);
  }
}

}  // namespace
}  // namespace fmds
