// Randomized shadow-equivalence for the adaptive dataplane (DESIGN.md §13):
// the same operation stream applied through three arms — one-sided only
// (routing off), adaptive router (probing keeps BOTH paths live mid-stream),
// and RPC-forced — must produce identical observable state, matching a
// std::unordered_map shadow. Runs under TSan/ASan/UBSan via scripts/check.sh
// with concurrent writers to shake out races between agent-landed CAS
// publications and caller-side caches/watches.
#include <cstdint>
#include <memory>
#include <optional>
#include <random>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/ht_tree.h"
#include "src/core/txn.h"
#include "src/route/router.h"
#include "src/route/rpc_dataplane.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

HtTree::Options CachedOptions() {
  HtTree::Options options;
  options.buckets_per_table = 128;  // small tables: real chains and splits
  options.cache.budget_bytes = 16 << 10;
  options.cache.admit_after = 2;
  return options;
}

enum class ArmKind { kOneSidedOnly, kAdaptive, kRpcForced };

DataplaneRouterOptions ArmRouterOptions(ArmKind kind) {
  DataplaneRouterOptions options;
  if (kind == ArmKind::kRpcForced) {
    options.force = DataplaneRoute::kRpc;
  } else {
    // Aggressive exploration: flip-flop between paths mid-stream so the
    // equivalence check covers interleavings of both protocols.
    options.probe_period = 4;
    options.min_samples = 2;
  }
  return options;
}

// One handle wired per `kind`; owns the router/path the handle borrows.
struct Arm {
  Arm(TestEnv* env, RpcDataplane* dataplane, ArmKind kind,
      std::optional<FarAddr> attach_to = std::nullopt)
      : client(env->NewClient()) {
    auto made = attach_to.has_value()
                    ? HtTree::Attach(&client, &env->alloc(), *attach_to,
                                     CachedOptions())
                    : HtTree::Create(&client, &env->alloc(), CachedOptions());
    EXPECT_TRUE(made.ok()) << made.status().ToString();
    map.emplace(std::move(*made));
    if (kind != ArmKind::kOneSidedOnly) {
      router.emplace(&client, ArmRouterOptions(kind));
      path.emplace(&client, dataplane);
      EXPECT_TRUE(map->EnableRouting(&*router, &*path).ok());
    }
  }

  FarClient& client;
  std::optional<HtTree> map;
  std::optional<DataplaneRouter> router;
  std::optional<RpcMapPath> path;
};

TEST(RouteEquivalence, RandomizedOpsMatchShadowAcrossArms) {
  TestEnv env(SmallFabric(2, 32ull << 20));
  RpcDataplane dataplane(&env.fabric(), &env.alloc());
  std::vector<std::unique_ptr<Arm>> arms;
  arms.push_back(
      std::make_unique<Arm>(&env, &dataplane, ArmKind::kOneSidedOnly));
  arms.push_back(std::make_unique<Arm>(&env, &dataplane, ArmKind::kAdaptive));
  arms.push_back(std::make_unique<Arm>(&env, &dataplane, ArmKind::kRpcForced));
  std::unordered_map<uint64_t, uint64_t> shadow;

  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<uint64_t> key_dist(1, 300);
  std::uniform_int_distribution<int> op_dist(0, 99);
  for (int step = 0; step < 2500; ++step) {
    const int roll = op_dist(rng);
    const uint64_t key = key_dist(rng);
    if (roll < 45) {
      const uint64_t value = rng();
      shadow[key] = value;
      for (auto& arm : arms) {
        ASSERT_TRUE(arm->map->Put(key, value).ok());
      }
    } else if (roll < 60) {
      shadow.erase(key);
      for (auto& arm : arms) {
        ASSERT_TRUE(arm->map->Remove(key).ok());
      }
    } else if (roll < 85) {
      const auto want = shadow.find(key);
      for (auto& arm : arms) {
        auto got = arm->map->Get(key);
        if (want == shadow.end()) {
          ASSERT_EQ(got.status().code(), StatusCode::kNotFound)
              << "step " << step << " key " << key;
        } else {
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          ASSERT_EQ(*got, want->second) << "step " << step << " key " << key;
        }
      }
    } else {
      uint64_t batch[8];
      for (uint64_t& k : batch) {
        k = key_dist(rng);
      }
      for (auto& arm : arms) {
        auto results = arm->map->MultiGet(batch);
        ASSERT_EQ(results.size(), 8u);
        for (size_t i = 0; i < 8; ++i) {
          const auto want = shadow.find(batch[i]);
          if (want == shadow.end()) {
            ASSERT_EQ(results[i].status().code(), StatusCode::kNotFound);
          } else {
            ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
            ASSERT_EQ(*results[i], want->second);
          }
        }
      }
    }
  }

  // Full-state sweep, cross-checked one-sided by an independent reader per
  // arm (no cache, no routing): the far-memory state itself must match,
  // not just each arm's own view of it.
  for (auto& arm : arms) {
    auto reader = HtTree::Attach(&env.NewClient(), &env.alloc(),
                                 arm->map->header(), HtTree::Options());
    ASSERT_TRUE(reader.ok());
    for (uint64_t key = 1; key <= 300; ++key) {
      const auto want = shadow.find(key);
      for (HtTree* view : {&*arm->map, &*reader}) {
        auto got = view->Get(key);
        if (want == shadow.end()) {
          ASSERT_EQ(got.status().code(), StatusCode::kNotFound) << key;
        } else {
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          ASSERT_EQ(*got, want->second) << key;
        }
      }
    }
  }
  // The adaptive arm must actually have exercised both protocols.
  EXPECT_GT(arms[1]->router->one_sided_decisions(), 0u);
  EXPECT_GT(arms[1]->router->rpc_decisions(), 0u);
}

// Deterministic per-range writer: the verifier replays the same sequence
// into a local shadow to know the expected final state.
void ApplyRange(HtTree* map, uint64_t base, int ops,
                std::unordered_map<uint64_t, uint64_t>* shadow) {
  std::mt19937_64 rng(base * 7919 + 13);
  std::uniform_int_distribution<uint64_t> key_dist(base, base + 63);
  std::uniform_int_distribution<int> op_dist(0, 99);
  for (int i = 0; i < ops; ++i) {
    const int roll = op_dist(rng);
    const uint64_t key = key_dist(rng);
    if (roll < 55) {
      const uint64_t value = rng();
      if (shadow != nullptr) {
        (*shadow)[key] = value;
      }
      if (map != nullptr) {
        ASSERT_TRUE(map->Put(key, value).ok());
      }
    } else if (roll < 75) {
      if (shadow != nullptr) {
        shadow->erase(key);
      }
      if (map != nullptr) {
        ASSERT_TRUE(map->Remove(key).ok());
      }
    } else if (roll < 90) {
      if (map != nullptr) {
        (void)map->Get(key);
      }
    } else {
      // Drawn even in shadow-replay mode so both passes consume the same
      // random stream.
      uint64_t batch[4];
      for (uint64_t& k : batch) {
        k = key_dist(rng);
      }
      if (map != nullptr) {
        (void)map->MultiGet(batch);
      }
    }
  }
}

class ConcurrentEquivalence : public ::testing::TestWithParam<ArmKind> {};

TEST_P(ConcurrentEquivalence, DisjointRangeWritersConverge) {
  constexpr int kThreads = 3;
  constexpr int kOpsPerThread = 400;
  TestEnv env(SmallFabric(2, 32ull << 20));
  RpcDataplane dataplane(&env.fabric(), &env.alloc());
  Arm owner(&env, &dataplane, ArmKind::kOneSidedOnly);

  // Pre-create per-thread clients (TestEnv is not thread-safe).
  std::vector<std::unique_ptr<Arm>> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.push_back(std::make_unique<Arm>(&env, &dataplane, GetParam(),
                                            owner.map->header()));
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ApplyRange(&*workers[t]->map, 1000 + 100 * t, kOpsPerThread, nullptr);
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  // Replay each range into a shadow; verify through a fresh one-sided
  // reader AND through each worker's own (cached, possibly routed) handle.
  for (int t = 0; t < kThreads; ++t) {
    const uint64_t base = 1000 + 100 * t;
    std::unordered_map<uint64_t, uint64_t> shadow;
    ApplyRange(nullptr, base, kOpsPerThread, &shadow);
    for (uint64_t key = base; key < base + 64; ++key) {
      const auto want = shadow.find(key);
      for (HtTree* view : {&*owner.map, &*workers[t]->map}) {
        auto got = view->Get(key);
        if (want == shadow.end()) {
          ASSERT_EQ(got.status().code(), StatusCode::kNotFound)
              << "key " << key;
        } else {
          ASSERT_TRUE(got.ok()) << got.status().ToString() << " key " << key;
          ASSERT_EQ(*got, want->second) << "key " << key;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Arms, ConcurrentEquivalence,
                         ::testing::Values(ArmKind::kOneSidedOnly,
                                           ArmKind::kAdaptive,
                                           ArmKind::kRpcForced),
                         [](const auto& info) {
                           switch (info.param) {
                             case ArmKind::kOneSidedOnly:
                               return "OneSided";
                             case ArmKind::kAdaptive:
                               return "Adaptive";
                             case ArmKind::kRpcForced:
                               return "RpcForced";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace fmds
