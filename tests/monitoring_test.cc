#include <gtest/gtest.h>

#include "src/apps/monitoring/monitoring.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

MonitorConfig Config() {
  MonitorConfig config;
  config.num_bins = 64;
  config.min_value = 0.0;
  config.max_value = 100.0;
  config.num_windows = 3;
  config.warn_bin = 48;      // samples >= 75.0
  config.critical_bin = 56;  // >= 87.5
  config.failure_bin = 62;   // >= 96.9
  config.alarm_duration = 2;
  return config;
}

TEST(MonitoringTest, RecordIsOneFarAccess) {
  TestEnv env;
  auto& client = env.NewClient();
  auto store = MonitorStore::Create(&client, &env.alloc(), Config());
  ASSERT_TRUE(store.ok());
  MetricProducer producer(&*store, &client);
  const uint64_t before = client.stats().far_ops;
  ASSERT_TRUE(producer.Record(50.0).ok());
  EXPECT_EQ(client.stats().far_ops - before, 1u)
      << "§6: one far access with indexed indirect addressing (add2)";
}

TEST(MonitoringTest, HistogramCountsAccumulate) {
  TestEnv env;
  auto& client = env.NewClient();
  auto store = MonitorStore::Create(&client, &env.alloc(), Config());
  ASSERT_TRUE(store.ok());
  MetricProducer producer(&*store, &client);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(producer.Record(10.0).ok());  // bin 6
  }
  ASSERT_TRUE(producer.Record(99.0).ok());  // bin 63
  uint64_t bin6 = 0;
  ASSERT_TRUE(client.Read(store->window_base(0) + 6 * kWordSize,
                          AsBytes(bin6)).ok());
  EXPECT_EQ(bin6, 10u);
  uint64_t bin63 = 0;
  ASSERT_TRUE(client.Read(store->window_base(0) + 63 * kWordSize,
                          AsBytes(bin63)).ok());
  EXPECT_EQ(bin63, 1u);
}

TEST(MonitoringTest, NormalSamplesCauseNoConsumerTraffic) {
  TestEnv env;
  auto& producer_client = env.NewClient();
  auto& consumer_client = env.NewClient();
  auto store =
      MonitorStore::Create(&producer_client, &env.alloc(), Config());
  ASSERT_TRUE(store.ok());
  MetricProducer producer(&*store, &producer_client);
  MetricConsumer consumer(&*store, &consumer_client,
                          AlarmSeverity::kWarning);
  ASSERT_TRUE(consumer.Subscribe().ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(producer.Record(30.0).ok());  // normal range
  }
  auto alarms = consumer.Poll();
  ASSERT_TRUE(alarms.ok());
  EXPECT_TRUE(alarms->empty());
  EXPECT_EQ(consumer.data_events(), 0u)
      << "§6: notifications are rare because samples are normal";
}

TEST(MonitoringTest, AlarmsFireBySeverity) {
  TestEnv env;
  auto& producer_client = env.NewClient();
  auto& warn_client = env.NewClient();
  auto& fail_client = env.NewClient();
  auto store =
      MonitorStore::Create(&producer_client, &env.alloc(), Config());
  ASSERT_TRUE(store.ok());
  MetricProducer producer(&*store, &producer_client);
  MetricConsumer warn_consumer(&*store, &warn_client,
                               AlarmSeverity::kWarning);
  MetricConsumer fail_consumer(&*store, &fail_client,
                               AlarmSeverity::kFailure);
  ASSERT_TRUE(warn_consumer.Subscribe().ok());
  ASSERT_TRUE(fail_consumer.Subscribe().ok());
  // Two warning-range samples (duration = 2).
  ASSERT_TRUE(producer.Record(80.0).ok());
  ASSERT_TRUE(producer.Record(80.0).ok());
  auto warn_alarms = warn_consumer.Poll();
  ASSERT_TRUE(warn_alarms.ok());
  ASSERT_FALSE(warn_alarms->empty());
  EXPECT_EQ(warn_alarms->front().severity, AlarmSeverity::kWarning);
  // The failure-only consumer saw nothing (different threshold).
  auto fail_alarms = fail_consumer.Poll();
  ASSERT_TRUE(fail_alarms.ok());
  EXPECT_TRUE(fail_alarms->empty());
  // Failure-range samples reach both.
  ASSERT_TRUE(producer.Record(99.5).ok());
  ASSERT_TRUE(producer.Record(99.5).ok());
  fail_alarms = fail_consumer.Poll();
  ASSERT_TRUE(fail_alarms.ok());
  ASSERT_FALSE(fail_alarms->empty());
  EXPECT_EQ(fail_alarms->front().severity, AlarmSeverity::kFailure);
}

TEST(MonitoringTest, AlarmRequiresDuration) {
  TestEnv env;
  auto& producer_client = env.NewClient();
  auto& consumer_client = env.NewClient();
  auto store =
      MonitorStore::Create(&producer_client, &env.alloc(), Config());
  ASSERT_TRUE(store.ok());
  MetricProducer producer(&*store, &producer_client);
  MetricConsumer consumer(&*store, &consumer_client,
                          AlarmSeverity::kWarning);
  ASSERT_TRUE(consumer.Subscribe().ok());
  ASSERT_TRUE(producer.Record(80.0).ok());  // once: below duration 2
  auto alarms = consumer.Poll();
  ASSERT_TRUE(alarms.ok());
  EXPECT_TRUE(alarms->empty());
}

TEST(MonitoringTest, WindowRotationNotifiesAndResets) {
  TestEnv env;
  auto& producer_client = env.NewClient();
  auto& consumer_client = env.NewClient();
  auto store =
      MonitorStore::Create(&producer_client, &env.alloc(), Config());
  ASSERT_TRUE(store.ok());
  MetricProducer producer(&*store, &producer_client);
  MetricConsumer consumer(&*store, &consumer_client,
                          AlarmSeverity::kWarning);
  ASSERT_TRUE(consumer.Subscribe().ok());
  ASSERT_TRUE(producer.Record(80.0).ok());
  ASSERT_TRUE(producer.Record(80.0).ok());
  ASSERT_TRUE(consumer.Poll().ok());
  ASSERT_TRUE(producer.RotateWindow().ok());
  ASSERT_TRUE(consumer.Poll().ok());
  EXPECT_EQ(consumer.rotations_seen(), 1u);
  // New window: the producer's add2 lands in window 1.
  ASSERT_TRUE(producer.Record(10.0).ok());
  uint64_t w1_bin6 = 0;
  ASSERT_TRUE(producer_client.Read(
      store->window_base(1) + 6 * kWordSize, AsBytes(w1_bin6)).ok());
  EXPECT_EQ(w1_bin6, 1u);
  // Alarm state reset: one exceedance in the new window is not enough.
  ASSERT_TRUE(producer.Record(80.0).ok());
  auto alarms = consumer.Poll();
  ASSERT_TRUE(alarms.ok());
  EXPECT_TRUE(alarms->empty());
}

TEST(MonitoringTest, MultiWindowLapReusesBuffers) {
  TestEnv env;
  auto& client = env.NewClient();
  auto store = MonitorStore::Create(&client, &env.alloc(), Config());
  ASSERT_TRUE(store.ok());
  MetricProducer producer(&*store, &client);
  ASSERT_TRUE(producer.Record(10.0).ok());
  // Rotate through a full lap; window 0 must be zeroed on reuse.
  for (uint64_t r = 0; r < store->config().num_windows; ++r) {
    ASSERT_TRUE(producer.RotateWindow().ok());
  }
  uint64_t bin6 = 0;
  ASSERT_TRUE(client.Read(store->window_base(0) + 6 * kWordSize,
                          AsBytes(bin6)).ok());
  EXPECT_EQ(bin6, 0u);
}

TEST(MonitoringTest, CopyAlarmRangeSnapshots) {
  TestEnv env;
  auto& producer_client = env.NewClient();
  auto& consumer_client = env.NewClient();
  auto store =
      MonitorStore::Create(&producer_client, &env.alloc(), Config());
  ASSERT_TRUE(store.ok());
  MetricProducer producer(&*store, &producer_client);
  MetricConsumer consumer(&*store, &consumer_client,
                          AlarmSeverity::kWarning);
  ASSERT_TRUE(consumer.Subscribe().ok());
  ASSERT_TRUE(producer.Record(80.0).ok());
  ASSERT_TRUE(producer.Record(99.0).ok());
  auto snapshot = consumer.CopyAlarmRange();
  ASSERT_TRUE(snapshot.ok());
  ASSERT_EQ(snapshot->size(), 64u - 48u);
  uint64_t total = 0;
  for (uint64_t count : *snapshot) {
    total += count;
  }
  EXPECT_EQ(total, 2u);
}

TEST(MonitoringTest, SnapshotAllWindowsIsOneFarAccess) {
  TestEnv env;
  auto& producer_client = env.NewClient();
  auto& consumer_client = env.NewClient();
  auto store =
      MonitorStore::Create(&producer_client, &env.alloc(), Config());
  ASSERT_TRUE(store.ok());
  MetricProducer producer(&*store, &producer_client);
  MetricConsumer consumer(&*store, &consumer_client,
                          AlarmSeverity::kWarning);
  ASSERT_TRUE(consumer.Subscribe().ok());
  ASSERT_TRUE(producer.Record(80.0).ok());
  const uint64_t before = consumer_client.stats().far_ops;
  auto windows = consumer.SnapshotAllWindows();
  ASSERT_TRUE(windows.ok());
  EXPECT_EQ(consumer_client.stats().far_ops - before, 1u)
      << "rgather pulls all windows' alarm ranges in one round trip";
  ASSERT_EQ(windows->size(), 3u);
  uint64_t total = 0;
  for (const auto& window : *windows) {
    for (uint64_t count : window) {
      total += count;
    }
  }
  EXPECT_EQ(total, 1u);
}

TEST(MonitoringTest, WindowDriftDetectsRegimeChange) {
  TestEnv env;
  auto& producer_client = env.NewClient();
  auto& consumer_client = env.NewClient();
  auto store =
      MonitorStore::Create(&producer_client, &env.alloc(), Config());
  ASSERT_TRUE(store.ok());
  MetricProducer producer(&*store, &producer_client);
  MetricConsumer consumer(&*store, &consumer_client,
                          AlarmSeverity::kWarning);
  ASSERT_TRUE(consumer.Subscribe().ok());
  // Window 0: a steady alarm-range load.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(producer.Record(80.0).ok());
  }
  ASSERT_TRUE(producer.RotateWindow().ok());
  ASSERT_TRUE(consumer.Poll().ok());  // track the rotation
  // Window 1: identical load -> low drift.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(producer.Record(80.0).ok());
  }
  auto same = consumer.WindowDrift();
  ASSERT_TRUE(same.ok());
  EXPECT_LT(*same, 0.1);
  // Window 2: the load shifts to the failure range -> high drift.
  ASSERT_TRUE(producer.RotateWindow().ok());
  ASSERT_TRUE(consumer.Poll().ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(producer.Record(99.0).ok());
  }
  auto changed = consumer.WindowDrift();
  ASSERT_TRUE(changed.ok());
  EXPECT_GT(*changed, 0.9);
}

// ------------- §6's headline: transfer counts, smart vs naive -------------

TEST(MonitoringTest, HistogramBeatsNaiveOnTransfers) {
  constexpr int kSamples = 500;
  constexpr int kConsumers = 3;
  constexpr double kAlarmFraction = 0.02;

  // Naive: producer logs raw samples, every consumer reads every sample.
  uint64_t naive_transfers = 0;
  {
    TestEnv env;
    auto& producer_client = env.NewClient();
    auto naive =
        NaiveMonitor::Create(&producer_client, &env.alloc(), kSamples);
    ASSERT_TRUE(naive.ok());
    Rng rng(41);
    for (int i = 0; i < kSamples; ++i) {
      const double sample = rng.NextBool(kAlarmFraction) ? 80.0 : 30.0;
      ASSERT_TRUE(naive->Record(&producer_client, sample).ok());
    }
    naive_transfers += producer_client.stats().far_ops;
    for (int c = 0; c < kConsumers; ++c) {
      auto& consumer_client = env.NewClient();
      uint64_t cursor = 0;
      ASSERT_EQ(
          *naive->PollSamples(&consumer_client, &cursor, nullptr),
          static_cast<uint64_t>(kSamples));
      naive_transfers += consumer_client.stats().far_ops;
    }
  }

  // Histogram + notifications.
  uint64_t smart_transfers = 0;
  uint64_t smart_notifications = 0;
  {
    TestEnv env;
    auto& producer_client = env.NewClient();
    auto store =
        MonitorStore::Create(&producer_client, &env.alloc(), Config());
    ASSERT_TRUE(store.ok());
    MetricProducer producer(&*store, &producer_client);
    std::vector<FarClient*> consumer_clients;
    std::vector<std::unique_ptr<MetricConsumer>> consumers;
    for (int c = 0; c < kConsumers; ++c) {
      consumer_clients.push_back(&env.NewClient());
      consumers.push_back(std::make_unique<MetricConsumer>(
          &*store, consumer_clients.back(), AlarmSeverity::kWarning));
      ASSERT_TRUE(consumers.back()->Subscribe().ok());
    }
    const uint64_t setup_ops = consumer_clients[0]->stats().far_ops;
    Rng rng(41);
    for (int i = 0; i < kSamples; ++i) {
      const double sample = rng.NextBool(kAlarmFraction) ? 80.0 : 30.0;
      ASSERT_TRUE(producer.Record(sample).ok());
    }
    smart_transfers += producer_client.stats().far_ops;
    for (int c = 0; c < kConsumers; ++c) {
      ASSERT_TRUE(consumers[c]->Poll().ok());
      smart_transfers += consumer_clients[c]->stats().far_ops - setup_ops;
      smart_notifications += consumer_clients[c]->stats().notifications;
    }
  }

  // Naive ~ (k+1)N; smart ~ N + m where m << N.
  EXPECT_GE(naive_transfers, (kConsumers + 1) * kSamples * 9ull / 10);
  EXPECT_LE(smart_transfers,
            static_cast<uint64_t>(kSamples) + kConsumers * 10);
  EXPECT_LT(smart_notifications,
            static_cast<uint64_t>(kSamples) * kConsumers / 5)
      << "m < N: only alarm-range samples notify";
}

}  // namespace
}  // namespace fmds
