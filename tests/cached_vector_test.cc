#include <gtest/gtest.h>

#include "src/core/cached_vector.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

TEST(CachedVectorTest, MirrorFollowsRemoteWrites) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto& reader = env.NewClient();
  auto vec_w = CachedFarVector::Create(&writer, &env.alloc(), 128);
  ASSERT_TRUE(vec_w.ok());
  auto vec_r = CachedFarVector::Attach(&reader, vec_w->header());
  ASSERT_TRUE(vec_r.ok());
  ASSERT_TRUE(vec_r->EnableMirror().ok());
  ASSERT_TRUE(vec_w->Set(7, 77).ok());
  ASSERT_TRUE(vec_w->Set(99, 999).ok());
  ASSERT_TRUE(vec_r->Sync().ok());
  EXPECT_EQ(*vec_r->Get(7), 77u);
  EXPECT_EQ(*vec_r->Get(99), 999u);
  EXPECT_EQ(vec_r->stats().events_applied, 2u);
}

TEST(CachedVectorTest, ReadsCostZeroFarAccesses) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto& reader = env.NewClient();
  auto vec_w = CachedFarVector::Create(&writer, &env.alloc(), 64);
  ASSERT_TRUE(vec_w.ok());
  auto vec_r = CachedFarVector::Attach(&reader, vec_w->header());
  ASSERT_TRUE(vec_r.ok());
  ASSERT_TRUE(vec_r->EnableMirror().ok());
  ASSERT_TRUE(vec_w->Set(1, 11).ok());
  const uint64_t before = reader.stats().far_ops;
  ASSERT_TRUE(vec_r->Sync().ok());
  for (uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(vec_r->Get(i).ok());
  }
  EXPECT_EQ(reader.stats().far_ops - before, 0u)
      << "§5.1: notification-updated caches serve reads locally";
}

TEST(CachedVectorTest, InitialMirrorSeesPreexistingData) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto& reader = env.NewClient();
  auto vec_w = CachedFarVector::Create(&writer, &env.alloc(), 32);
  ASSERT_TRUE(vec_w.ok());
  ASSERT_TRUE(vec_w->Set(3, 333).ok());  // before the mirror exists
  auto vec_r = CachedFarVector::Attach(&reader, vec_w->header());
  ASSERT_TRUE(vec_r.ok());
  ASSERT_TRUE(vec_r->EnableMirror().ok());
  EXPECT_EQ(*vec_r->Get(3), 333u);
}

TEST(CachedVectorTest, LossTriggersResync) {
  TestEnv env;
  auto& writer = env.NewClient();
  ClientOptions tiny;
  tiny.channel_capacity = 2;
  FarClient reader(&env.fabric(), 88, tiny);
  auto vec_w = CachedFarVector::Create(&writer, &env.alloc(), 256);
  ASSERT_TRUE(vec_w.ok());
  auto vec_r = CachedFarVector::Attach(&reader, vec_w->header());
  ASSERT_TRUE(vec_r.ok());
  ASSERT_TRUE(vec_r->EnableMirror().ok());
  for (uint64_t i = 0; i < 256; i += 2) {
    ASSERT_TRUE(vec_w->Set(i, i + 1).ok());  // overflows the channel
  }
  ASSERT_TRUE(vec_r->Sync().ok());
  EXPECT_GT(vec_r->stats().loss_resyncs, 0u);
  for (uint64_t i = 0; i < 256; i += 2) {
    ASSERT_EQ(*vec_r->Get(i), i + 1);
  }
}

TEST(CachedVectorTest, RepeatedLossRoundsReconverge) {
  // Every overflow round must end in a consistent mirror, and the resync
  // must restore the zero-far-access read property — loss is a performance
  // event, never a correctness one.
  TestEnv env;
  auto& writer = env.NewClient();
  ClientOptions tiny;
  tiny.channel_capacity = 2;
  FarClient reader(&env.fabric(), 89, tiny);
  auto vec_w = CachedFarVector::Create(&writer, &env.alloc(), 128);
  ASSERT_TRUE(vec_w.ok());
  auto vec_r = CachedFarVector::Attach(&reader, vec_w->header());
  ASSERT_TRUE(vec_r.ok());
  ASSERT_TRUE(vec_r->EnableMirror().ok());
  uint64_t resyncs_seen = 0;
  for (uint64_t round = 1; round <= 4; ++round) {
    for (uint64_t i = 0; i < 128; ++i) {
      ASSERT_TRUE(vec_w->Set(i, round * 1000 + i).ok());  // overflows
    }
    ASSERT_TRUE(vec_r->Sync().ok());
    EXPECT_GT(vec_r->stats().loss_resyncs, resyncs_seen)
        << "round " << round << " overflowed the channel";
    resyncs_seen = vec_r->stats().loss_resyncs;
    const uint64_t far_before = reader.stats().far_ops;
    for (uint64_t i = 0; i < 128; ++i) {
      ASSERT_EQ(*vec_r->Get(i), round * 1000 + i);
    }
    EXPECT_EQ(reader.stats().far_ops, far_before)
        << "post-resync reads must be local again";
  }
}

TEST(CachedVectorTest, EventsResumeAfterLossResync) {
  // A loss resync drains the channel; later in-capacity updates flow as
  // ordinary events again without re-triggering resyncs.
  TestEnv env;
  auto& writer = env.NewClient();
  ClientOptions tiny;
  tiny.channel_capacity = 2;
  FarClient reader(&env.fabric(), 90, tiny);
  auto vec_w = CachedFarVector::Create(&writer, &env.alloc(), 64);
  ASSERT_TRUE(vec_w.ok());
  auto vec_r = CachedFarVector::Attach(&reader, vec_w->header());
  ASSERT_TRUE(vec_r.ok());
  ASSERT_TRUE(vec_r->EnableMirror().ok());
  for (uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(vec_w->Set(i, i).ok());
  }
  ASSERT_TRUE(vec_r->Sync().ok());
  const uint64_t resyncs = vec_r->stats().loss_resyncs;
  ASSERT_GT(resyncs, 0u);
  const uint64_t applied = vec_r->stats().events_applied;
  ASSERT_TRUE(vec_w->Set(5, 5555).ok());  // fits the channel
  ASSERT_TRUE(vec_r->Sync().ok());
  EXPECT_EQ(*vec_r->Get(5), 5555u);
  EXPECT_EQ(vec_r->stats().loss_resyncs, resyncs);
  EXPECT_GT(vec_r->stats().events_applied, applied);
}

TEST(CachedVectorTest, MultipleMirrorsAllFollow) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto vec_w = CachedFarVector::Create(&writer, &env.alloc(), 16);
  ASSERT_TRUE(vec_w.ok());
  std::vector<FarClient*> readers;
  std::vector<CachedFarVector> mirrors;
  for (int i = 0; i < 3; ++i) {
    readers.push_back(&env.NewClient());
    auto mirror = CachedFarVector::Attach(readers.back(), vec_w->header());
    ASSERT_TRUE(mirror.ok());
    ASSERT_TRUE(mirror->EnableMirror().ok());
    mirrors.push_back(*std::move(mirror));
  }
  ASSERT_TRUE(vec_w->Set(5, 55).ok());
  for (auto& mirror : mirrors) {
    ASSERT_TRUE(mirror.Sync().ok());
    EXPECT_EQ(*mirror.Get(5), 55u);
  }
}

TEST(CachedVectorTest, BoundsAndPreconditions) {
  TestEnv env;
  auto& client = env.NewClient();
  auto vec = CachedFarVector::Create(&client, &env.alloc(), 8);
  ASSERT_TRUE(vec.ok());
  EXPECT_FALSE(vec->Set(8, 1).ok());
  EXPECT_FALSE(vec->Get(0).ok());   // mirror not enabled
  EXPECT_FALSE(vec->Sync().ok());
  ASSERT_TRUE(vec->EnableMirror().ok());
  EXPECT_FALSE(vec->Get(8).ok());
  EXPECT_FALSE(CachedFarVector::Create(&client, &env.alloc(), 0).ok());
}

TEST(CachedVectorTest, SelfWriteAlsoNotifiesOwnMirror) {
  // A client mirroring a vector it also writes sees its own writes pushed
  // back through the fabric (hardware does not filter by origin).
  TestEnv env;
  auto& client = env.NewClient();
  auto vec = CachedFarVector::Create(&client, &env.alloc(), 16);
  ASSERT_TRUE(vec.ok());
  ASSERT_TRUE(vec->EnableMirror().ok());
  ASSERT_TRUE(vec->Set(2, 22).ok());
  ASSERT_TRUE(vec->Sync().ok());
  EXPECT_EQ(*vec->Get(2), 22u);
}

}  // namespace
}  // namespace fmds
