// Shared test fixtures: a fabric + allocator + clients bundle with
// convenient defaults.
#ifndef FMDS_TESTS_TEST_ENV_H_
#define FMDS_TESTS_TEST_ENV_H_

#include <memory>
#include <vector>

#include "src/alloc/far_allocator.h"
#include "src/fabric/fabric.h"
#include "src/fabric/far_client.h"

namespace fmds {

class TestEnv {
 public:
  explicit TestEnv(FabricOptions options = FabricOptions())
      : fabric_(options), alloc_(&fabric_) {}

  Fabric& fabric() { return fabric_; }
  FarAllocator& alloc() { return alloc_; }

  // Creates (and owns) a new client.
  FarClient& NewClient() {
    clients_.push_back(
        std::make_unique<FarClient>(&fabric_, clients_.size() + 1));
    return *clients_.back();
  }

 private:
  Fabric fabric_;
  FarAllocator alloc_;
  std::vector<std::unique_ptr<FarClient>> clients_;
};

inline FabricOptions SmallFabric(uint32_t nodes = 1,
                                 uint64_t capacity = 8ull << 20) {
  FabricOptions options;
  options.num_nodes = nodes;
  options.node_capacity = capacity;
  return options;
}

inline FabricOptions StripedFabric(uint32_t nodes, uint64_t stripe_bytes,
                                   uint64_t capacity = 8ull << 20) {
  FabricOptions options;
  options.num_nodes = nodes;
  options.node_capacity = capacity;
  options.stripe_bytes = stripe_bytes;
  return options;
}

}  // namespace fmds

#endif  // FMDS_TESTS_TEST_ENV_H_
