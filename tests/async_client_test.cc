// Async batched pipeline (Post*/Flush/Poll/WaitAll): completion ordering,
// partial-batch flushes, per-op error propagation, latency/stats accounting
// (doorbell batching, §3.1/§4.2), equivalence of async interleavings with
// the sync path, a multi-threaded flush stress, and MultiGet hot paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "src/baselines/chained_hash.h"
#include "src/baselines/neighborhood_hash.h"
#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/core/blob_store.h"
#include "src/core/ht_tree.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

// ---------------------------- Core pipeline ----------------------------

TEST(AsyncClientTest, CompletionsArriveInPostOrder) {
  TestEnv env;
  auto& client = env.NewClient();
  ASSERT_TRUE(client.WriteWord(64, 11).ok());
  ASSERT_TRUE(client.WriteWord(72, 22).ok());
  ASSERT_TRUE(client.WriteWord(80, 33).ok());

  const auto id1 = client.PostReadWord(80);
  const auto id2 = client.PostReadWord(64);
  const auto id3 = client.PostReadWord(72);
  EXPECT_EQ(client.pending_ops(), 3u);
  ASSERT_TRUE(client.Flush().ok());
  EXPECT_EQ(client.pending_ops(), 0u);
  EXPECT_EQ(client.pending_completions(), 3u);

  auto c1 = client.Poll();
  auto c2 = client.Poll();
  auto c3 = client.Poll();
  ASSERT_TRUE(c1 && c2 && c3);
  EXPECT_EQ(c1->id, id1);
  EXPECT_EQ(c2->id, id2);
  EXPECT_EQ(c3->id, id3);
  EXPECT_EQ(c1->word, 33u);
  EXPECT_EQ(c2->word, 11u);
  EXPECT_EQ(c3->word, 22u);
  EXPECT_FALSE(client.Poll().has_value());
}

TEST(AsyncClientTest, BatchExecutesInPostOrderWithinOneFlush) {
  // A write posted before a read of the same word must be visible to it.
  TestEnv env;
  auto& client = env.NewClient();
  ASSERT_TRUE(client.WriteWord(64, 1).ok());
  client.PostWriteWord(64, 42);
  client.PostReadWord(64);
  client.PostCompareSwap(64, 42, 99);
  client.PostFetchAdd(64, 1);
  std::vector<FarClient::Completion> done;
  ASSERT_TRUE(client.WaitAll(&done).ok());
  ASSERT_EQ(done.size(), 4u);
  EXPECT_EQ(done[1].word, 42u);   // read sees the posted write
  EXPECT_EQ(done[2].word, 42u);   // CAS observes 42, installs 99
  EXPECT_EQ(done[3].word, 99u);   // fetch-add observes the CAS result
  EXPECT_EQ(*client.ReadWord(64), 100u);
}

TEST(AsyncClientTest, PartialBatchFlushes) {
  TestEnv env;
  auto& client = env.NewClient();
  const ClientStats before = client.stats();
  client.PostWriteWord(64, 7);
  client.PostWriteWord(72, 8);
  ASSERT_TRUE(client.Flush().ok());
  client.PostReadWord(64);
  client.PostReadWord(72);
  client.PostReadWord(64);
  ASSERT_TRUE(client.Flush().ok());
  const ClientStats delta = client.stats().Delta(before);
  EXPECT_EQ(delta.batches, 2u);
  EXPECT_EQ(delta.batched_ops, 5u);
  EXPECT_EQ(delta.far_ops, 2u);  // one waited round trip per doorbell
  EXPECT_EQ(client.pending_completions(), 5u);
  // An empty flush is free.
  const ClientStats before_empty = client.stats();
  ASSERT_TRUE(client.Flush().ok());
  EXPECT_EQ(client.stats().Delta(before_empty).batches, 0u);
}

TEST(AsyncClientTest, WaitAllFlushesPendingOps) {
  TestEnv env;
  auto& client = env.NewClient();
  client.PostWriteWord(64, 5);
  client.PostReadWord(64);
  EXPECT_EQ(client.pending_ops(), 2u);
  std::vector<FarClient::Completion> done;
  ASSERT_TRUE(client.WaitAll(&done).ok());  // no explicit Flush
  EXPECT_EQ(client.pending_ops(), 0u);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[1].word, 5u);
}

TEST(AsyncClientTest, PerOpErrorsDoNotPoisonTheBatch) {
  TestEnv env(SmallFabric(1, 1 << 20));
  auto& client = env.NewClient();
  const FarAddr beyond = env.fabric().total_capacity();
  ASSERT_TRUE(client.WriteWord(64, 77).ok());

  client.PostReadWord(64);
  client.PostReadWord(beyond);       // out of range
  client.PostWriteWord(beyond, 1);   // out of range
  client.PostReadWord(64 + 1);       // misaligned
  client.PostReadWord(72);
  std::vector<FarClient::Completion> done;
  const Status overall = client.WaitAll(&done);
  EXPECT_FALSE(overall.ok());  // first error surfaces
  ASSERT_EQ(done.size(), 5u);
  EXPECT_TRUE(done[0].status.ok());
  EXPECT_EQ(done[0].word, 77u);
  EXPECT_EQ(done[1].status.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(done[2].status.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(done[3].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(done[4].status.ok());
}

TEST(AsyncClientTest, PostReadAndWriteBuffers) {
  TestEnv env;
  auto& client = env.NewClient();
  std::vector<std::byte> payload(100);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i);
  }
  client.PostWrite(256, payload);
  // Write payloads are copied at Post time: clobber the source before Flush.
  std::fill(payload.begin(), payload.end(), std::byte{0xFF});
  std::vector<std::byte> echo(100);
  client.PostRead(256, echo);
  ASSERT_TRUE(client.WaitAll().ok());
  for (size_t i = 0; i < echo.size(); ++i) {
    EXPECT_EQ(echo[i], static_cast<std::byte>(i));
  }
}

TEST(AsyncClientTest, PostRGatherCollectsScatteredSegments) {
  TestEnv env;
  auto& client = env.NewClient();
  ASSERT_TRUE(client.WriteWord(64, 0x1111).ok());
  ASSERT_TRUE(client.WriteWord(512, 0x2222).ok());
  uint64_t out[2] = {0, 0};
  client.PostRGather({{64, 8}, {512, 8}},
                     std::as_writable_bytes(std::span<uint64_t>(out)));
  ASSERT_TRUE(client.WaitAll().ok());
  EXPECT_EQ(out[0], 0x1111u);
  EXPECT_EQ(out[1], 0x2222u);
}

TEST(AsyncClientTest, PostLoad0NullPointerFailsPrecondition) {
  TestEnv env;
  auto& client = env.NewClient();
  ASSERT_TRUE(client.WriteWord(64, 0).ok());  // null pointer word
  uint64_t out;
  client.PostLoad0(64, AsBytes(out));
  std::vector<FarClient::Completion> done;
  EXPECT_FALSE(client.WaitAll(&done).ok());
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].status.code(), StatusCode::kFailedPrecondition);
}

TEST(AsyncClientTest, PostLoad0FollowsPointerLikeSyncLoad0) {
  TestEnv env;
  auto& client = env.NewClient();
  ASSERT_TRUE(client.WriteWord(128, 0xabcd).ok());
  ASSERT_TRUE(client.WriteWord(64, 128).ok());  // pointer -> 128
  uint64_t out = 0;
  client.PostLoad0(64, AsBytes(out));
  std::vector<FarClient::Completion> done;
  ASSERT_TRUE(client.WaitAll(&done).ok());
  EXPECT_EQ(out, 0xabcdu);
  EXPECT_EQ(done[0].word, 128u);  // indirect pointer surfaces in the word
}

TEST(AsyncClientTest, FenceFlushesPostedOps) {
  TestEnv env;
  auto& client = env.NewClient();
  client.PostWriteWord(64, 123);
  client.Fence();
  EXPECT_EQ(client.pending_ops(), 0u);
  EXPECT_EQ(*client.ReadWord(64), 123u);
  // Completions remain pollable after the fence.
  EXPECT_EQ(client.pending_completions(), 1u);
}

// ------------------------- Latency accounting -------------------------

TEST(AsyncClientTest, SingleOpBatchCostsExactlyOneSyncOp) {
  TestEnv env;
  auto& sync_client = env.NewClient();
  auto& async_client = env.NewClient();

  const uint64_t sync_t0 = sync_client.clock().now_ns();
  ASSERT_TRUE(sync_client.ReadWord(64).ok());
  const uint64_t sync_cost = sync_client.clock().now_ns() - sync_t0;

  const uint64_t async_t0 = async_client.clock().now_ns();
  async_client.PostReadWord(64);
  ASSERT_TRUE(async_client.Flush().ok());
  const uint64_t async_cost = async_client.clock().now_ns() - async_t0;
  EXPECT_EQ(async_cost, sync_cost);
}

TEST(AsyncClientTest, BatchOfKCostsOneRttPlusPerOpOccupancy) {
  TestEnv env;
  auto& client = env.NewClient();
  const LatencyModel model;  // defaults match the fabric's model
  constexpr uint64_t kOps = 8;

  const ClientStats before = client.stats();
  const uint64_t t0 = client.clock().now_ns();
  for (uint64_t i = 0; i < kOps; ++i) {
    client.PostReadWord(64 + 8 * i);
  }
  ASSERT_TRUE(client.Flush().ok());
  const uint64_t elapsed = client.clock().now_ns() - t0;
  EXPECT_EQ(elapsed, model.BatchNs(kOps, kOps * kWordSize));

  const ClientStats delta = client.stats().Delta(before);
  EXPECT_EQ(delta.far_ops, 1u);               // one waited round trip
  EXPECT_EQ(delta.messages, kOps);            // traffic is still k messages
  EXPECT_EQ(delta.batches, 1u);
  EXPECT_EQ(delta.batched_ops, kOps);
  EXPECT_EQ(delta.overlapped_rtts_saved, kOps - 1);
  // Strictly cheaper than k sync round trips.
  EXPECT_LT(elapsed, kOps * model.FarRoundTripNs(kWordSize));
}

TEST(AsyncClientTest, CrossNodeGroupsOverlap) {
  TestEnv env(SmallFabric(2, 1 << 20));
  auto& client = env.NewClient();
  const FarAddr node1_word = (1ull << 20) + 64;  // contiguous partitions

  const uint64_t t0 = client.clock().now_ns();
  client.PostReadWord(64);          // node 0
  client.PostReadWord(node1_word);  // node 1
  ASSERT_TRUE(client.Flush().ok());
  const uint64_t both = client.clock().now_ns() - t0;

  const uint64_t t1 = client.clock().now_ns();
  client.PostReadWord(64);
  ASSERT_TRUE(client.Flush().ok());
  const uint64_t one = client.clock().now_ns() - t1;

  // Two single-op groups on different nodes overlap: same cost as one.
  EXPECT_EQ(both, one);
}

TEST(AsyncClientTest, ErrorPolicyIndirectionChargesSerialRoundTrip) {
  // Pointer on node 0 targeting node 1 under kError: the client completes
  // the dependent read itself — a second, non-overlappable round trip.
  FabricOptions options = SmallFabric(2, 1 << 20);
  options.indirection = IndirectionPolicy::kError;
  TestEnv env(options);
  auto& client = env.NewClient();
  const FarAddr remote = (1ull << 20) + 256;
  ASSERT_TRUE(client.WriteWord(remote, 0x5a5a).ok());
  ASSERT_TRUE(client.WriteWord(64, remote).ok());

  const ClientStats before = client.stats();
  uint64_t out = 0;
  client.PostLoad0(64, AsBytes(out));
  std::vector<FarClient::Completion> done;
  ASSERT_TRUE(client.WaitAll(&done).ok());
  EXPECT_EQ(out, 0x5a5au);
  // Doorbell round trip + serialized dependent access.
  EXPECT_EQ(client.stats().Delta(before).far_ops, 2u);
}

// ------------------- Async/sync equivalence (property) -------------------

TEST(AsyncClientTest, RandomAsyncInterleavingsMatchSyncExecution) {
  // The same deterministic op stream applied (a) synchronously and (b) in
  // randomly sized batches must produce identical memory images and
  // identical per-op results.
  constexpr uint64_t kWords = 32;
  constexpr int kOpsTotal = 600;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    TestEnv sync_env(SmallFabric());
    TestEnv async_env(SmallFabric());
    auto& sync_client = sync_env.NewClient();
    auto& async_client = async_env.NewClient();

    // One deterministic op stream drives both legs.
    struct Op {
      uint64_t kind;
      uint64_t slot;
      uint64_t arg;
      bool flush_after;
    };
    Rng rng(seed);
    std::vector<Op> ops;
    for (int i = 0; i < kOpsTotal; ++i) {
      ops.push_back(Op{rng.NextBelow(4), rng.NextBelow(kWords),
                       rng.NextBelow(1000), rng.NextBool(0.2)});
    }
    std::vector<uint64_t> sync_results;

    auto addr_of = [](uint64_t slot) { return 64 + 8 * slot; };

    // Sync leg.
    for (const Op& op : ops) {
      switch (op.kind) {
        case 0:
          ASSERT_TRUE(sync_client.WriteWord(addr_of(op.slot), op.arg).ok());
          sync_results.push_back(0);
          break;
        case 1:
          sync_results.push_back(*sync_client.ReadWord(addr_of(op.slot)));
          break;
        case 2:
          sync_results.push_back(*sync_client.CompareSwap(
              addr_of(op.slot), op.arg, op.arg + 1));
          break;
        default:
          sync_results.push_back(
              *sync_client.FetchAdd(addr_of(op.slot), op.arg));
          break;
      }
    }

    // Async leg: identical stream, flushed at random batch boundaries.
    std::vector<FarClient::Completion> done;
    for (const Op& op : ops) {
      switch (op.kind) {
        case 0:
          async_client.PostWriteWord(addr_of(op.slot), op.arg);
          break;
        case 1:
          async_client.PostReadWord(addr_of(op.slot));
          break;
        case 2:
          async_client.PostCompareSwap(addr_of(op.slot), op.arg, op.arg + 1);
          break;
        default:
          async_client.PostFetchAdd(addr_of(op.slot), op.arg);
          break;
      }
      if (op.flush_after) {
        ASSERT_TRUE(async_client.WaitAll(&done).ok());
      }
    }
    ASSERT_TRUE(async_client.WaitAll(&done).ok());

    ASSERT_EQ(done.size(), sync_results.size());
    for (size_t i = 0; i < done.size(); ++i) {
      EXPECT_EQ(done[i].word, sync_results[i]) << "op " << i;
    }
    for (uint64_t slot = 0; slot < kWords; ++slot) {
      EXPECT_EQ(*async_client.ReadWord(addr_of(slot)),
                *sync_client.ReadWord(addr_of(slot)))
          << "slot " << slot;
    }
    // Batching must have saved round trips somewhere.
    EXPECT_GT(async_client.stats().overlapped_rtts_saved, 0u);
    EXPECT_LT(async_client.stats().far_ops, sync_client.stats().far_ops);
  }
}

// --------------------------- Threaded stress ---------------------------

TEST(AsyncClientTest, ConcurrentFlushesKeepWordsAtomic) {
  // N client threads flush mixed batches against one memory node. Counter
  // words accumulate exactly; hammered words never tear (always hold a
  // value some thread wrote whole).
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  constexpr uint64_t kCounter = 64;
  constexpr uint64_t kShared = 72;
  TestEnv env(SmallFabric(1));
  std::vector<FarClient*> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(&env.NewClient());
  }
  ASSERT_TRUE(clients[0]->WriteWord(kCounter, 0).ok());
  ASSERT_TRUE(clients[0]->WriteWord(kShared, 0).ok());

  auto tagged = [](int thread, int round) {
    const uint64_t tag = 0x1000 + thread;
    return tag << 32 | static_cast<uint64_t>(round);
  };

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      FarClient& client = *clients[t];
      for (int r = 0; r < kRounds; ++r) {
        client.PostFetchAdd(kCounter, 1);
        client.PostWriteWord(kShared, tagged(t, r));
        client.PostReadWord(kShared);
        std::vector<FarClient::Completion> done;
        if (!client.WaitAll(&done).ok() || done.size() != 3) {
          failures.fetch_add(1);
          continue;
        }
        // The shared word must be SOME whole tagged value (no tearing).
        const uint64_t seen = done[2].word;
        const uint64_t tag = seen >> 32;
        const uint64_t round = seen & 0xffffffffu;
        if (tag < 0x1000 || tag >= 0x1000 + kThreads ||
            round >= static_cast<uint64_t>(kRounds)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(*clients[0]->ReadWord(kCounter),
            static_cast<uint64_t>(kThreads) * kRounds);
}

// ------------------------- MultiGet hot paths -------------------------

TEST(AsyncClientTest, HtTreeMultiGetMatchesSyncGets) {
  TestEnv env;
  auto& client = env.NewClient();
  HtTree::Options options;
  options.buckets_per_table = 256;
  auto map = HtTree::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(map.ok());
  constexpr uint64_t kKeys = 500;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_TRUE(map->Put(k, k * 3).ok());
  }
  std::vector<uint64_t> lookups;
  for (uint64_t k = 1; k <= 40; ++k) {
    lookups.push_back(k * 13 % (kKeys + 50) + 1);  // mix of hits and misses
  }
  const ClientStats before = client.stats();
  auto batched = map->MultiGet(lookups);
  const ClientStats batch_delta = client.stats().Delta(before);
  ASSERT_EQ(batched.size(), lookups.size());
  const ClientStats mid = client.stats();
  for (size_t i = 0; i < lookups.size(); ++i) {
    auto expected = map->Get(lookups[i]);
    EXPECT_EQ(batched[i].ok(), expected.ok()) << "key " << lookups[i];
    if (expected.ok()) {
      EXPECT_EQ(*batched[i], *expected) << "key " << lookups[i];
    } else {
      EXPECT_EQ(batched[i].status().code(), expected.status().code());
    }
  }
  const ClientStats sync_delta = client.stats().Delta(mid);
  // The batched path waits on strictly fewer round trips than sync.
  EXPECT_LT(batch_delta.far_ops, sync_delta.far_ops);
  EXPECT_GT(batch_delta.overlapped_rtts_saved, 0u);
}

TEST(AsyncClientTest, ChainedHashMultiGetMatchesSyncGets) {
  for (const bool indirect : {false, true}) {
    TestEnv env;
    auto& client = env.NewClient();
    ChainedHash::Options options;
    options.buckets = 64;  // load factor forces chains
    options.use_indirect = indirect;
    auto table = ChainedHash::Create(&client, &env.alloc(), options);
    ASSERT_TRUE(table.ok());
    for (uint64_t k = 1; k <= 300; ++k) {
      ASSERT_TRUE(table->Put(k, k + 7).ok());
    }
    ASSERT_TRUE(table->Remove(42).ok());  // tombstone

    std::vector<uint64_t> lookups;
    for (uint64_t k = 30; k < 60; ++k) {
      lookups.push_back(k);  // includes the tombstoned 42
    }
    lookups.push_back(4040);  // absent
    const ClientStats before = client.stats();
    auto batched = table->MultiGet(lookups);
    const ClientStats batch_delta = client.stats().Delta(before);
    ASSERT_EQ(batched.size(), lookups.size());
    const ClientStats mid = client.stats();
    for (size_t i = 0; i < lookups.size(); ++i) {
      auto expected = table->Get(lookups[i]);
      EXPECT_EQ(batched[i].ok(), expected.ok())
          << "key " << lookups[i] << " indirect " << indirect;
      if (expected.ok()) {
        EXPECT_EQ(*batched[i], *expected);
      } else {
        EXPECT_EQ(batched[i].status().code(), expected.status().code());
      }
    }
    const ClientStats sync_delta = client.stats().Delta(mid);
    EXPECT_LT(batch_delta.far_ops, sync_delta.far_ops);
  }
}

TEST(AsyncClientTest, NeighborhoodHashMultiGetMatchesSyncGets) {
  TestEnv env;
  auto& client = env.NewClient();
  NeighborhoodHash::Options options;
  options.buckets = 512;
  auto table = NeighborhoodHash::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(table.ok());
  for (uint64_t k = 1; k <= 200; ++k) {
    const Status put = table->Put(k, k * 2);
    if (put.code() != StatusCode::kResourceExhausted) {
      ASSERT_TRUE(put.ok());
    }
  }
  std::vector<uint64_t> lookups{5, 17, 9999, 0, 60, 123};
  const ClientStats before = client.stats();
  auto batched = table->MultiGet(lookups);
  const ClientStats batch_delta = client.stats().Delta(before);
  ASSERT_EQ(batched.size(), lookups.size());
  for (size_t i = 0; i < lookups.size(); ++i) {
    auto expected = table->Get(lookups[i]);
    EXPECT_EQ(batched[i].ok(), expected.ok()) << "key " << lookups[i];
    if (expected.ok()) {
      EXPECT_EQ(*batched[i], *expected);
    } else {
      EXPECT_EQ(batched[i].status().code(), expected.status().code());
    }
  }
  // 5 live probes (key 0 never leaves the client) ride one doorbell.
  EXPECT_EQ(batch_delta.far_ops, 1u);
  EXPECT_EQ(batch_delta.batches, 1u);
}

TEST(AsyncClientTest, BlobStoreMultiGetMatchesSyncGets) {
  TestEnv env;
  auto& client = env.NewClient();
  auto store = HtBlobStore::Create(&client, &env.alloc());
  ASSERT_TRUE(store.ok());
  // Small values (inline fetch) and large ones (tail wave).
  auto value_for = [](uint64_t key) {
    const size_t len = key % 3 == 0 ? 700 : 40;
    std::vector<std::byte> value(len);
    for (size_t i = 0; i < len; ++i) {
      value[i] = static_cast<std::byte>((key + i) & 0xff);
    }
    return value;
  };
  for (uint64_t k = 1; k <= 60; ++k) {
    ASSERT_TRUE(store->Put(k, value_for(k)).ok());
  }
  std::vector<uint64_t> lookups{1, 3, 6, 9, 12, 25, 777, 30};
  const ClientStats before = client.stats();
  auto batched = store->MultiGet(lookups);
  const ClientStats batch_delta = client.stats().Delta(before);
  ASSERT_EQ(batched.size(), lookups.size());
  const ClientStats mid = client.stats();
  for (size_t i = 0; i < lookups.size(); ++i) {
    auto expected = store->Get(lookups[i]);
    EXPECT_EQ(batched[i].ok(), expected.ok()) << "key " << lookups[i];
    if (expected.ok()) {
      EXPECT_EQ(*batched[i], *expected) << "key " << lookups[i];
    } else {
      EXPECT_EQ(batched[i].status().code(), expected.status().code());
    }
  }
  const ClientStats sync_delta = client.stats().Delta(mid);
  EXPECT_LT(batch_delta.far_ops, sync_delta.far_ops);
  EXPECT_GT(batch_delta.overlapped_rtts_saved, 0u);
}

}  // namespace
}  // namespace fmds
