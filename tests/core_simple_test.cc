#include <gtest/gtest.h>

#include <thread>

#include "src/core/far_barrier.h"
#include "src/core/far_counter.h"
#include "src/core/far_mutex.h"
#include "src/core/far_vector.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

// ------------------------------- FarCounter -------------------------------

TEST(FarCounterTest, BasicOps) {
  TestEnv env;
  auto& client = env.NewClient();
  auto counter = FarCounter::Create(client, env.alloc(), 10);
  ASSERT_TRUE(counter.ok());
  EXPECT_EQ(*counter->Get(client), 10u);
  ASSERT_TRUE(counter->Add(client, 5).ok());
  EXPECT_EQ(*counter->Get(client), 15u);
  EXPECT_EQ(*counter->FetchAdd(client, 1), 15u);
  ASSERT_TRUE(counter->Set(client, 0).ok());
  EXPECT_EQ(*counter->Get(client), 0u);
}

TEST(FarCounterTest, EveryOpIsOneFarAccess) {
  TestEnv env;
  auto& client = env.NewClient();
  auto counter = FarCounter::Create(client, env.alloc());
  ASSERT_TRUE(counter.ok());
  const uint64_t before = client.stats().far_ops;
  ASSERT_TRUE(counter->Add(client, 1).ok());
  ASSERT_TRUE(counter->Get(client).ok());
  ASSERT_TRUE(counter->Set(client, 9).ok());
  EXPECT_EQ(client.stats().far_ops - before, 3u);
}

TEST(FarCounterTest, SharedAcrossClients) {
  TestEnv env;
  auto& a = env.NewClient();
  auto& b = env.NewClient();
  auto counter = FarCounter::Create(a, env.alloc());
  ASSERT_TRUE(counter.ok());
  auto attached = FarCounter::Attach(counter->addr());
  ASSERT_TRUE(attached.Add(b, 7).ok());
  EXPECT_EQ(*counter->Get(a), 7u);
}

TEST(FarCounterTest, EqualsNotification) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto& watcher = env.NewClient();
  auto counter = FarCounter::Create(writer, env.alloc(), 3);
  ASSERT_TRUE(counter.ok());
  ASSERT_TRUE(counter->SubscribeEquals(watcher, 0).ok());
  ASSERT_TRUE(counter->FetchAdd(writer, static_cast<uint64_t>(-1)).ok());
  ASSERT_TRUE(counter->FetchAdd(writer, static_cast<uint64_t>(-1)).ok());
  EXPECT_FALSE(watcher.PollNotification().has_value());
  ASSERT_TRUE(counter->FetchAdd(writer, static_cast<uint64_t>(-1)).ok());
  EXPECT_TRUE(watcher.PollNotification().has_value());  // hit zero
}

// ------------------------------- FarVector --------------------------------

TEST(FarVectorTest, DirectGetSet) {
  TestEnv env;
  auto& client = env.NewClient();
  auto vec = FarVector<uint64_t>::Create(client, env.alloc(), 128);
  ASSERT_TRUE(vec.ok());
  ASSERT_TRUE(vec->Set(client, 5, 42).ok());
  EXPECT_EQ(*vec->Get(client, 5), 42u);
  EXPECT_EQ(*vec->Get(client, 6), 0u);  // zero-initialized
  EXPECT_FALSE(vec->Get(client, 128).ok());
  EXPECT_FALSE(vec->Set(client, 128, 1).ok());
}

TEST(FarVectorTest, IndirectMatchesDirect) {
  TestEnv env;
  auto& client = env.NewClient();
  auto vec = FarVector<uint64_t>::Create(client, env.alloc(), 64);
  ASSERT_TRUE(vec.ok());
  ASSERT_TRUE(vec->SetIndirect(client, 3, 77).ok());
  EXPECT_EQ(*vec->Get(client, 3), 77u);
  EXPECT_EQ(*vec->GetIndirect(client, 3), 77u);
}

TEST(FarVectorTest, IndirectIsOneFarAccess) {
  TestEnv env;
  auto& client = env.NewClient();
  auto vec = FarVector<uint64_t>::Create(client, env.alloc(), 64);
  ASSERT_TRUE(vec.ok());
  const uint64_t before = client.stats().far_ops;
  ASSERT_TRUE(vec->GetIndirect(client, 1).ok());
  ASSERT_TRUE(vec->SetIndirect(client, 1, 5).ok());
  ASSERT_TRUE(vec->AddIndirect(client, 1, 2).ok());
  EXPECT_EQ(client.stats().far_ops - before, 3u);
  EXPECT_EQ(*vec->Get(client, 1), 7u);
}

TEST(FarVectorTest, RangeOps) {
  TestEnv env;
  auto& client = env.NewClient();
  auto vec = FarVector<uint64_t>::Create(client, env.alloc(), 64);
  ASSERT_TRUE(vec.ok());
  std::vector<uint64_t> values{1, 2, 3, 4, 5};
  ASSERT_TRUE(vec->WriteRange(client, 10, values).ok());
  std::vector<uint64_t> out(5);
  ASSERT_TRUE(vec->ReadRange(client, 10, std::span<uint64_t>(out)).ok());
  EXPECT_EQ(out, values);
  EXPECT_FALSE(vec->ReadRange(client, 62, std::span<uint64_t>(out)).ok());
}

TEST(FarVectorTest, RebaseSwitchesIndirectReaders) {
  TestEnv env;
  auto& owner = env.NewClient();
  auto& reader = env.NewClient();
  auto vec = FarVector<uint64_t>::Create(owner, env.alloc(), 16);
  ASSERT_TRUE(vec.ok());
  ASSERT_TRUE(vec->Set(owner, 0, 1).ok());
  auto attached = FarVector<uint64_t>::Attach(reader, vec->header());
  ASSERT_TRUE(attached.ok());
  EXPECT_EQ(*attached->GetIndirect(reader, 0), 1u);
  // Owner swings the base pointer to fresh storage.
  auto fresh = env.alloc().Allocate(16 * sizeof(uint64_t));
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(owner.WriteWord(*fresh, 999).ok());
  ASSERT_TRUE(vec->Rebase(owner, *fresh).ok());
  // Indirect readers follow without re-attaching.
  EXPECT_EQ(*attached->GetIndirect(reader, 0), 999u);
}

TEST(FarVectorTest, RangeSubscription) {
  TestEnv env;
  auto& writer = env.NewClient();
  auto& watcher = env.NewClient();
  auto vec = FarVector<uint64_t>::Create(writer, env.alloc(), 64,
                                         AllocHint::Any());
  ASSERT_TRUE(vec.ok());
  ASSERT_TRUE(vec->SubscribeRange(watcher, 8, 8, /*with_data=*/true).ok());
  ASSERT_TRUE(vec->Set(writer, 3, 1).ok());  // outside
  EXPECT_FALSE(watcher.PollNotification().has_value());
  ASSERT_TRUE(vec->Set(writer, 9, 123).ok());  // inside
  auto event = watcher.PollNotification();
  ASSERT_TRUE(event.has_value());
  ASSERT_EQ(event->data.size(), sizeof(uint64_t));
  EXPECT_EQ(LoadAs<uint64_t>(std::span<const std::byte>(event->data)), 123u);
}

// -------------------------------- FarMutex --------------------------------

TEST(FarMutexTest, TryLockSemantics) {
  TestEnv env;
  auto& a = env.NewClient();
  auto& b = env.NewClient();
  auto mutex = FarMutex::Create(a, env.alloc());
  ASSERT_TRUE(mutex.ok());
  EXPECT_TRUE(*mutex->TryLock(a));
  EXPECT_FALSE(*mutex->TryLock(b));
  ASSERT_TRUE(mutex->Unlock(a).ok());
  EXPECT_TRUE(*mutex->TryLock(b));
}

class FarMutexStrategyTest
    : public ::testing::TestWithParam<MutexWaitStrategy> {};

TEST_P(FarMutexStrategyTest, MutualExclusionAcrossThreads) {
  TestEnv env;
  auto& creator = env.NewClient();
  auto mutex = FarMutex::Create(creator, env.alloc());
  ASSERT_TRUE(mutex.ok());
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  uint64_t shared_counter = 0;  // plain variable: the far mutex protects it
  std::vector<FarClient*> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(&env.NewClient());
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        ASSERT_TRUE(mutex->Lock(*clients[t], GetParam()).ok());
        ++shared_counter;
        ASSERT_TRUE(mutex->Unlock(*clients[t]).ok());
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(shared_counter, static_cast<uint64_t>(kThreads) * kIters);
}

INSTANTIATE_TEST_SUITE_P(Strategies, FarMutexStrategyTest,
                         ::testing::Values(MutexWaitStrategy::kNotify,
                                           MutexWaitStrategy::kPoll));

TEST(FarMutexTest, GuardReleasesOnScopeExit) {
  TestEnv env;
  auto& a = env.NewClient();
  auto& b = env.NewClient();
  auto mutex = FarMutex::Create(a, env.alloc());
  ASSERT_TRUE(mutex.ok());
  {
    FarMutexGuard guard(*mutex, a);
    ASSERT_TRUE(guard.status().ok());
    EXPECT_FALSE(*mutex->TryLock(b));
  }
  EXPECT_TRUE(*mutex->TryLock(b));
}

// ------------------------------- FarBarrier -------------------------------

TEST(FarBarrierTest, SingleParticipantPassesImmediately) {
  TestEnv env;
  auto& client = env.NewClient();
  auto barrier = FarBarrier::Create(client, env.alloc(), 1);
  ASSERT_TRUE(barrier.ok());
  EXPECT_TRUE(barrier->Arrive(client).ok());
  EXPECT_TRUE(barrier->Arrive(client).ok());  // reusable
}

TEST(FarBarrierTest, ThreadsRendezvousAcrossRounds) {
  TestEnv env;
  auto& creator = env.NewClient();
  constexpr int kThreads = 4;
  constexpr int kRounds = 5;
  auto barrier = FarBarrier::Create(creator, env.alloc(), kThreads);
  ASSERT_TRUE(barrier.ok());
  std::atomic<int> phase_counter{0};
  std::vector<FarClient*> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(&env.NewClient());
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto handle = FarBarrier::Attach(*clients[t], barrier->base());
      ASSERT_TRUE(handle.ok());
      for (int round = 0; round < kRounds; ++round) {
        phase_counter.fetch_add(1);
        ASSERT_TRUE(handle->Arrive(*clients[t]).ok());
        // After the barrier, every thread of this round has arrived.
        EXPECT_GE(phase_counter.load(), (round + 1) * kThreads);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(phase_counter.load(), kThreads * kRounds);
}

}  // namespace
}  // namespace fmds
