#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "src/core/ht_tree.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

FabricOptions BigFabric() { return SmallFabric(1, 256ull << 20); }

HtTree::Options SmallTables(uint64_t buckets = 64, uint32_t depth = 0) {
  HtTree::Options options;
  options.buckets_per_table = buckets;
  options.initial_depth = depth;
  options.max_chain = 4;
  return options;
}

TEST(HtTreeTest, PutGetRoundTrip) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  auto map = HtTree::Create(&client, &env.alloc(), SmallTables());
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->Get(1).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(map->Put(1, 100).ok());
  EXPECT_EQ(*map->Get(1), 100u);
  ASSERT_TRUE(map->Put(1, 200).ok());  // update shadows
  EXPECT_EQ(*map->Get(1), 200u);
}

TEST(HtTreeTest, RemoveTombstones) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  auto map = HtTree::Create(&client, &env.alloc(), SmallTables());
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->Put(7, 70).ok());
  ASSERT_TRUE(map->Remove(7).ok());
  EXPECT_EQ(map->Get(7).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(map->Put(7, 71).ok());  // re-insert after remove
  EXPECT_EQ(*map->Get(7), 71u);
}

TEST(HtTreeTest, FreshLookupIsOneFarAccess) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  auto map = HtTree::Create(&client, &env.alloc(),
                            SmallTables(/*buckets=*/1024));
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->Put(5, 55).ok());
  const uint64_t before = client.stats().far_ops;
  EXPECT_EQ(*map->Get(5), 55u);
  EXPECT_EQ(client.stats().far_ops - before, 1u)
      << "§5.2: fresh-cache lookups take one far access";
  // Negative lookups too (the sentinel carries the version).
  const uint64_t before_miss = client.stats().far_ops;
  EXPECT_EQ(map->Get(987654).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(client.stats().far_ops - before_miss, 1u);
}

TEST(HtTreeTest, FreshPutIsTwoFarAccesses) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  auto map = HtTree::Create(&client, &env.alloc(),
                            SmallTables(/*buckets=*/4096));
  ASSERT_TRUE(map.ok());
  // Warm the arena so allocation is local.
  ASSERT_TRUE(map->Put(1, 1).ok());
  const uint64_t before = client.stats().far_ops;
  ASSERT_TRUE(map->Put(2, 2).ok());
  EXPECT_EQ(client.stats().far_ops - before, 2u)
      << "§5.2: stores take two far accesses (item write + bucket CAS)";
}

TEST(HtTreeTest, ManyKeysWithSplits) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  auto map = HtTree::Create(&client, &env.alloc(), SmallTables(32));
  ASSERT_TRUE(map.ok());
  constexpr uint64_t kKeys = 2000;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_TRUE(map->Put(k, k * 2).ok()) << "key " << k;
  }
  EXPECT_GT(map->op_stats().splits, 0u) << "small tables must have split";
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_EQ(*map->Get(k), k * 2) << "key " << k;
  }
  EXPECT_GT(map->cached_tables(), 1u);
}

TEST(HtTreeTest, InitialDepthPreSplits) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  auto map = HtTree::Create(&client, &env.alloc(),
                            SmallTables(64, /*depth=*/3));
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->cached_tables(), 8u);
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(map->Put(k, k).ok());
  }
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(*map->Get(k), k);
  }
}

TEST(HtTreeTest, SecondClientSeesData) {
  TestEnv env(BigFabric());
  auto& a = env.NewClient();
  auto& b = env.NewClient();
  auto map_a = HtTree::Create(&a, &env.alloc(), SmallTables());
  ASSERT_TRUE(map_a.ok());
  ASSERT_TRUE(map_a->Put(11, 111).ok());
  auto map_b = HtTree::Attach(&b, &env.alloc(), map_a->header());
  ASSERT_TRUE(map_b.ok());
  EXPECT_EQ(*map_b->Get(11), 111u);
  ASSERT_TRUE(map_b->Put(22, 222).ok());
  EXPECT_EQ(*map_a->Get(22), 222u);
}

TEST(HtTreeTest, StaleCacheRecoversAfterRemoteSplit) {
  TestEnv env(BigFabric());
  auto& a = env.NewClient();
  auto& b = env.NewClient();
  auto map_a = HtTree::Create(&a, &env.alloc(), SmallTables(16));
  ASSERT_TRUE(map_a.ok());
  auto map_b = HtTree::Attach(&b, &env.alloc(), map_a->header());
  ASSERT_TRUE(map_b.ok());
  // Client A inserts enough to split several times; B's cache goes stale.
  for (uint64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(map_a->Put(k, k + 1).ok());
  }
  ASSERT_GT(map_a->op_stats().splits, 0u);
  // B still finds everything (staleness detected via retired buckets /
  // version mismatches, then refresh).
  for (uint64_t k = 0; k < 500; ++k) {
    ASSERT_EQ(*map_b->Get(k), k + 1) << "key " << k;
  }
  EXPECT_GT(map_b->op_stats().stale_refreshes, 0u);
}

TEST(HtTreeTest, ForcedSplitPreservesContent) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  auto map = HtTree::Create(&client, &env.alloc(), SmallTables(128));
  ASSERT_TRUE(map.ok());
  std::map<uint64_t, uint64_t> expected;
  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(map->Put(k, k * 3).ok());
    expected[k] = k * 3;
  }
  ASSERT_TRUE(map->Remove(5).ok());
  expected.erase(5);
  ASSERT_TRUE(map->SplitTableOf(0).ok());
  for (const auto& [k, v] : expected) {
    EXPECT_EQ(*map->Get(k), v);
  }
  EXPECT_EQ(map->Get(5).status().code(), StatusCode::kNotFound)
      << "tombstones survive (as absence) across splits";
}

TEST(HtTreeTest, SplitNotificationsRefreshCache) {
  TestEnv env(BigFabric());
  auto& a = env.NewClient();
  auto& b = env.NewClient();
  auto map_a = HtTree::Create(&a, &env.alloc(), SmallTables(64));
  ASSERT_TRUE(map_a.ok());
  auto map_b = HtTree::Attach(&b, &env.alloc(), map_a->header());
  ASSERT_TRUE(map_b.ok());
  ASSERT_TRUE(map_b->EnableSplitNotifications().ok());
  ASSERT_TRUE(map_a->Put(1, 2).ok());
  ASSERT_TRUE(map_a->SplitTableOf(1).ok());
  auto refreshed = map_b->PollSplitNotifications();
  ASSERT_TRUE(refreshed.ok());
  EXPECT_TRUE(*refreshed);
  // After the pushed refresh, the lookup is fresh: one access, no stale
  // retry.
  const uint64_t stale_before = map_b->op_stats().stale_refreshes;
  EXPECT_EQ(*map_b->Get(1), 2u);
  EXPECT_EQ(map_b->op_stats().stale_refreshes, stale_before);
}

TEST(HtTreeTest, CacheBytesGrowWithTables) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  auto map = HtTree::Create(&client, &env.alloc(), SmallTables(16));
  ASSERT_TRUE(map.ok());
  const uint64_t before = map->cache_bytes();
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(map->Put(k, k).ok());
  }
  EXPECT_GT(map->cache_bytes(), before);
}

TEST(HtTreeTest, ConcurrentWritersDistinctKeys) {
  TestEnv env(BigFabric());
  auto& creator = env.NewClient();
  auto map = HtTree::Create(&creator, &env.alloc(), SmallTables(256));
  ASSERT_TRUE(map.ok());
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 300;
  std::vector<FarClient*> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(&env.NewClient());
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto handle =
          HtTree::Attach(clients[t], &env.alloc(), map->header());
      ASSERT_TRUE(handle.ok());
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t key = t * kPerThread + i + 1;
        ASSERT_TRUE(handle->Put(key, key * 10).ok());
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (uint64_t key = 1; key <= kThreads * kPerThread; ++key) {
    ASSERT_EQ(*map->Get(key), key * 10) << "key " << key;
  }
}

TEST(HtTreeTest, ConcurrentReadersDuringWrites) {
  TestEnv env(BigFabric());
  auto& creator = env.NewClient();
  auto map = HtTree::Create(&creator, &env.alloc(), SmallTables(64));
  ASSERT_TRUE(map.ok());
  for (uint64_t k = 1; k <= 200; ++k) {
    ASSERT_TRUE(map->Put(k, k).ok());
  }
  std::atomic<bool> stop{false};
  auto& reader_client = env.NewClient();
  auto& writer_client = env.NewClient();
  std::thread reader([&] {
    auto handle =
        HtTree::Attach(&reader_client, &env.alloc(), map->header());
    ASSERT_TRUE(handle.ok());
    Rng rng(3);
    while (!stop.load()) {
      const uint64_t key = rng.NextInRange(1, 200);
      auto value = handle->Get(key);
      ASSERT_TRUE(value.ok());
      ASSERT_EQ(*value % key == 0, true);  // value is k or k*7
    }
  });
  std::thread writer([&] {
    auto handle =
        HtTree::Attach(&writer_client, &env.alloc(), map->header());
    ASSERT_TRUE(handle.ok());
    for (uint64_t k = 201; k <= 1200; ++k) {
      ASSERT_TRUE(handle->Put(k, k).ok());  // force splits under readers
    }
  });
  writer.join();
  stop.store(true);
  reader.join();
}

TEST(HtTreeTest, AblationModesStayCorrect) {
  // The ablation knobs (no load0 indirection / no head hints) change the
  // access count, never the semantics.
  for (bool indirect : {true, false}) {
    for (bool hints : {true, false}) {
      TestEnv env(BigFabric());
      auto& client = env.NewClient();
      HtTree::Options options = SmallTables(64);
      options.use_indirect = indirect;
      options.use_head_hints = hints;
      auto map = HtTree::Create(&client, &env.alloc(), options);
      ASSERT_TRUE(map.ok());
      for (uint64_t k = 1; k <= 400; ++k) {
        ASSERT_TRUE(map->Put(k, k * 9).ok());
      }
      ASSERT_TRUE(map->Remove(13).ok());
      for (uint64_t k = 1; k <= 400; ++k) {
        if (k == 13) {
          EXPECT_EQ(map->Get(k).status().code(), StatusCode::kNotFound);
        } else {
          ASSERT_EQ(*map->Get(k), k * 9) << "indirect=" << indirect
                                         << " hints=" << hints;
        }
      }
    }
  }
}

TEST(HtTreeTest, NonIndirectLookupCostsTwoAccesses) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  HtTree::Options options = SmallTables(4096);
  options.use_indirect = false;
  auto map = HtTree::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->Put(5, 55).ok());
  const uint64_t before = client.stats().far_ops;
  EXPECT_EQ(*map->Get(5), 55u);
  EXPECT_EQ(client.stats().far_ops - before, 2u)
      << "without load0: bucket word + item";
}

// Property sweep: content matches a reference map across geometries.
class HtTreeParamTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(HtTreeParamTest, MatchesReferenceMap) {
  const auto [buckets, depth] = GetParam();
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  auto map = HtTree::Create(&client, &env.alloc(),
                            SmallTables(buckets, depth));
  ASSERT_TRUE(map.ok());
  std::map<uint64_t, uint64_t> reference;
  Rng rng(buckets * 31 + depth);
  for (int op = 0; op < 3000; ++op) {
    const uint64_t key = rng.NextInRange(1, 400);
    const int kind = static_cast<int>(rng.NextBelow(10));
    if (kind < 6) {  // put
      const uint64_t value = rng.Next() | 1;
      ASSERT_TRUE(map->Put(key, value).ok());
      reference[key] = value;
    } else if (kind < 8) {  // remove
      ASSERT_TRUE(map->Remove(key).ok());
      reference.erase(key);
    } else {  // get
      auto value = map->Get(key);
      auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_EQ(value.status().code(), StatusCode::kNotFound);
      } else {
        ASSERT_TRUE(value.ok());
        EXPECT_EQ(*value, it->second);
      }
    }
  }
  // Final full validation.
  for (const auto& [key, value] : reference) {
    EXPECT_EQ(*map->Get(key), value);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, HtTreeParamTest,
    ::testing::Combine(::testing::Values<uint64_t>(8, 64, 512),
                       ::testing::Values<uint32_t>(0, 2)));

}  // namespace
}  // namespace fmds
