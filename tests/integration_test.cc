// Cross-module integration: a small far-memory application exercising the
// queue, the HT-tree, the barrier, counters and the monitoring histogram on
// ONE shared fabric, from multiple threads — the "everything composed"
// smoke test.
#include <gtest/gtest.h>

#include <thread>

#include "src/apps/monitoring/monitoring.h"
#include "src/core/far_barrier.h"
#include "src/core/far_counter.h"
#include "src/core/far_queue.h"
#include "src/core/ht_tree.h"
#include "src/rpc/kv_service.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

TEST(IntegrationTest, WorkQueueFeedsMapUnderBarrier) {
  TestEnv env(SmallFabric(2, 64ull << 20));
  auto& coordinator = env.NewClient();

  constexpr int kWorkers = 4;
  constexpr uint64_t kTasks = 800;

  FarQueue::Options queue_options;
  queue_options.capacity = 256;
  queue_options.max_clients = kWorkers + 1;
  auto queue = FarQueue::Create(&coordinator, &env.alloc(), queue_options);
  ASSERT_TRUE(queue.ok());

  HtTree::Options map_options;
  map_options.buckets_per_table = 128;
  auto map = HtTree::Create(&coordinator, &env.alloc(), map_options);
  ASSERT_TRUE(map.ok());

  auto barrier = FarBarrier::Create(coordinator, env.alloc(), kWorkers);
  ASSERT_TRUE(barrier.ok());
  auto done_counter = FarCounter::Create(coordinator, env.alloc());
  ASSERT_TRUE(done_counter.ok());

  std::vector<FarClient*> clients;
  for (int w = 0; w < kWorkers + 1; ++w) {
    clients.push_back(&env.NewClient());
  }

  // Producer thread feeds task ids; workers drain, square them into the
  // map, then rendezvous and verify each other's results.
  std::thread producer([&] {
    auto handle = FarQueue::Attach(clients[kWorkers], queue->header());
    ASSERT_TRUE(handle.ok());
    for (uint64_t task = 1; task <= kTasks; ++task) {
      while (!handle->Enqueue(task).ok()) {
        std::this_thread::yield();
      }
    }
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      auto worker_queue = FarQueue::Attach(clients[w], queue->header());
      ASSERT_TRUE(worker_queue.ok());
      auto worker_map =
          HtTree::Attach(clients[w], &env.alloc(), map->header());
      ASSERT_TRUE(worker_map.ok());
      auto worker_barrier =
          FarBarrier::Attach(*clients[w], barrier->base());
      ASSERT_TRUE(worker_barrier.ok());
      auto counter = FarCounter::Attach(done_counter->addr());

      while (*counter.Get(*clients[w]) < kTasks) {
        auto task = worker_queue->Dequeue();
        if (!task.ok()) {
          std::this_thread::yield();
          continue;
        }
        ASSERT_TRUE(worker_map->Put(*task, *task * *task).ok());
        ASSERT_TRUE(counter.Add(*clients[w], 1).ok());
      }
      // All tasks processed; rendezvous, then cross-check a sample.
      ASSERT_TRUE(worker_barrier->Arrive(*clients[w], 30000).ok());
      for (uint64_t task = w + 1; task <= kTasks; task += kWorkers) {
        ASSERT_EQ(*worker_map->Get(task), task * task) << task;
      }
    });
  }

  producer.join();
  for (auto& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(*done_counter->Get(coordinator), kTasks);
  for (uint64_t task = 1; task <= kTasks; ++task) {
    ASSERT_EQ(*map->Get(task), task * task);
  }
}

TEST(IntegrationTest, MonitoringObservesMapWorkload) {
  TestEnv env(SmallFabric(1, 64ull << 20));
  auto& worker = env.NewClient();
  auto& observer = env.NewClient();

  MonitorConfig config;
  config.num_bins = 32;
  config.max_value = 32.0;
  config.warn_bin = 16;
  config.critical_bin = 24;
  config.failure_bin = 30;
  config.alarm_duration = 5;
  auto store = MonitorStore::Create(&worker, &env.alloc(), config);
  ASSERT_TRUE(store.ok());
  MetricProducer producer(&*store, &worker);
  MetricConsumer consumer(&*store, &observer, AlarmSeverity::kWarning);
  ASSERT_TRUE(consumer.Subscribe().ok());

  auto map = HtTree::Create(&worker, &env.alloc());
  ASSERT_TRUE(map.ok());

  // Run a map workload and feed the per-op far-access count into the
  // monitoring histogram (a "metric" with real systems meaning: most ops
  // cost 1-2 accesses; splits spike it into the alarm range).
  uint64_t last_far_ops = worker.stats().far_ops;
  for (uint64_t k = 1; k <= 2000; ++k) {
    ASSERT_TRUE(map->Put(k, k).ok());
    const uint64_t spent = worker.stats().far_ops - last_far_ops;
    last_far_ops = worker.stats().far_ops;
    ASSERT_TRUE(producer.Record(static_cast<double>(spent)).ok());
    last_far_ops = worker.stats().far_ops;  // exclude the Record itself
  }
  auto alarms = consumer.Poll();
  ASSERT_TRUE(alarms.ok());
  // Splits happened (small default tables would not split at 2000 keys with
  // 1024 buckets; just assert the pipeline flowed without errors and the
  // cheap-op bins dominate).
  uint64_t bin1 = 0;
  ASSERT_TRUE(worker.Read(store->window_base(0) + 2 * kWordSize,
                          AsBytes(bin1)).ok());
  EXPECT_GT(bin1, 1000u) << "most puts cost exactly 2 far accesses";
}

TEST(IntegrationTest, RpcAndOneSidedShareTheFabric) {
  // The RPC baseline and the one-sided structures coexist on one fabric;
  // their cost accounting stays separate.
  TestEnv env;
  auto& client = env.NewClient();
  RpcServer server;
  KvService service(&server);
  KvStub stub{RpcClient(&client, &server)};
  auto map = HtTree::Create(&client, &env.alloc());
  ASSERT_TRUE(map.ok());
  const auto before = client.stats();
  ASSERT_TRUE(stub.Put(1, 10).ok());
  ASSERT_TRUE(map->Put(1, 20).ok());
  const auto delta = client.stats().Delta(before);
  EXPECT_EQ(delta.rpc_calls, 1u);
  EXPECT_EQ(delta.far_ops, 2u);
  EXPECT_EQ(*stub.Get(1), 10u);
  EXPECT_EQ(*map->Get(1), 20u);
}

}  // namespace
}  // namespace fmds
