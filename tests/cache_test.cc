// Tests for the near-memory caching layer (src/cache/): ClockRing
// second-chance mechanics, NearCache budget/admission/coherence accounting,
// and end-to-end coherence through HtTree / ShardedMap / HtBlobStore —
// including the randomized cache-on/off equivalence property and the
// threaded writer/reader invalidation race (run under TSan by check.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "src/cache/clock_ring.h"
#include "src/cache/near_cache.h"
#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/core/blob_store.h"
#include "src/core/ht_tree.h"
#include "src/core/sharded_map.h"
#include "tests/test_env.h"

namespace fmds {
namespace {

FabricOptions BigFabric() { return SmallFabric(1, 256ull << 20); }

// ---------------------------------------------------------------- ClockRing

TEST(ClockRingTest, FindTouchEraseBasics) {
  ClockRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.Find(1), ClockRing<int>::npos);
  const size_t slot = ring.Insert(1, 10);
  EXPECT_EQ(ring.Find(1), slot);
  EXPECT_EQ(ring.value(slot), 10);
  EXPECT_EQ(ring.key(slot), 1u);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_TRUE(ring.Erase(1));
  EXPECT_FALSE(ring.Erase(1));
  EXPECT_EQ(ring.Find(1), ClockRing<int>::npos);
  EXPECT_TRUE(ring.empty());
}

TEST(ClockRingTest, SecondChanceEvictionOrder) {
  // A=referenced, B,C=unreferenced. The sweep must give A its second
  // chance (clear the bit, skip it) and evict B first, then C — the exact
  // CLOCK ordering the hint cache relies on instead of its old O(n) clear.
  ClockRing<int> ring(3);
  ring.Insert(1, 10);  // A
  ring.Insert(2, 20);  // B
  ring.Insert(3, 30);  // C
  ring.Unref(ring.Find(2));
  ring.Unref(ring.Find(3));
  std::optional<std::pair<uint64_t, int>> evicted;
  ring.Insert(4, 40, &evicted);  // D
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->first, 2u) << "B was first in line past referenced A";
  evicted.reset();
  ring.Insert(5, 50, &evicted);  // E: hand continues, C is next victim
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->first, 3u);
  // A survived both sweeps; its bit was spent on the first one.
  EXPECT_NE(ring.Find(1), ClockRing<int>::npos);
}

TEST(ClockRingTest, AllReferencedWrapsAndEvictsOldest) {
  ClockRing<int> ring(3);
  ring.Insert(1, 10);
  ring.Insert(2, 20);
  ring.Insert(3, 30);
  // Every bit set: the sweep clears all three, wraps, and takes slot 0.
  std::optional<std::pair<uint64_t, int>> evicted;
  ring.Insert(4, 40, &evicted);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->first, 1u);
  EXPECT_EQ(ring.size(), 3u);
}

TEST(ClockRingTest, UpsertTouchesExisting) {
  ClockRing<int> ring(2);
  ring.Insert(1, 10);
  ring.Insert(2, 20);
  ring.Unref(ring.Find(1));
  ring.Upsert(1, 11);  // re-references and replaces in place, no eviction
  EXPECT_EQ(ring.value(ring.Find(1)), 11);
  EXPECT_EQ(ring.size(), 2u);
  ring.Unref(ring.Find(2));
  std::optional<std::pair<uint64_t, int>> evicted;
  ring.Insert(3, 30, &evicted);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->first, 2u) << "the upsert's touch protected key 1";
}

// ---------------------------------------------------------------- NearCache

NearCacheOptions CacheOpts(uint64_t budget, uint32_t admit_after = 1) {
  NearCacheOptions options;
  options.budget_bytes = budget;
  options.admit_after = admit_after;
  return options;
}

constexpr uint64_t kEntryCost = kWordSize + NearCache::kEntryOverhead;  // 72

TEST(NearCacheTest, ByteBudgetExactFit) {
  TestEnv env;
  auto& client = env.NewClient();
  NearCache cache(&client, CacheOpts(2 * kEntryCost));
  uint64_t v1 = 111, v2 = 222, v3 = 333;
  cache.Admit(1, AsConstBytes(v1), /*watch=*/64, kWordSize, /*expected=*/0);
  cache.Admit(2, AsConstBytes(v2), /*watch=*/128, kWordSize, /*expected=*/0);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.bytes_used(), 2 * kEntryCost);
  EXPECT_EQ(cache.stats().evictions, 0u) << "two entries fit exactly";
  cache.Admit(3, AsConstBytes(v3), /*watch=*/192, kWordSize, /*expected=*/0);
  EXPECT_EQ(cache.entries(), 2u) << "third entry forces an eviction";
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.bytes_used(), 2 * kEntryCost);
}

TEST(NearCacheTest, ByteBudgetOverByOneEvicts) {
  TestEnv env;
  auto& client = env.NewClient();
  NearCache cache(&client, CacheOpts(2 * kEntryCost - 1));
  uint64_t v1 = 111, v2 = 222;
  cache.Admit(1, AsConstBytes(v1), 64, kWordSize, 0);
  cache.Admit(2, AsConstBytes(v2), 128, kWordSize, 0);
  EXPECT_EQ(cache.entries(), 1u) << "one byte short of two entries";
  EXPECT_EQ(cache.stats().evictions, 1u);
  uint64_t out = 0;
  EXPECT_TRUE(cache.Lookup(2, AsBytes(out)));
  EXPECT_EQ(out, 222u) << "the newer entry survives";
}

TEST(NearCacheTest, EntryLargerThanBudgetNeverAdmitted) {
  TestEnv env;
  auto& client = env.NewClient();
  NearCache cache(&client, CacheOpts(kEntryCost - 1));
  uint64_t v = 7;
  cache.Admit(1, AsConstBytes(v), 64, kWordSize, 0);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.stats().admissions, 0u);
}

TEST(NearCacheTest, KHitAdmissionFilter) {
  TestEnv env;
  auto& client = env.NewClient();
  NearCache cache(&client, CacheOpts(1 << 20, /*admit_after=*/3));
  uint64_t v = 42;
  cache.Admit(1, AsConstBytes(v), 64, kWordSize, 0);
  cache.Admit(1, AsConstBytes(v), 64, kWordSize, 0);
  EXPECT_EQ(cache.entries(), 0u) << "two sightings, threshold is three";
  EXPECT_EQ(cache.stats().admissions, 0u);
  cache.Admit(1, AsConstBytes(v), 64, kWordSize, 0);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.stats().admissions, 1u);
  // A different key starts its count from scratch.
  cache.Admit(2, AsConstBytes(v), 128, kWordSize, 0);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(NearCacheTest, RefillAfterInvalidationSkipsResubscribe) {
  TestEnv env;
  auto& reader = env.NewClient();
  auto& writer = env.NewClient();
  NearCache cache(&reader, CacheOpts(1 << 20));
  uint64_t v = 100;
  cache.Admit(1, AsConstBytes(v), 64, kWordSize, 0);
  EXPECT_EQ(cache.stats().admissions, 1u);

  ASSERT_TRUE(writer.WriteWord(64, 5).ok());
  EXPECT_EQ(reader.DispatchNotifications(), 1u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  uint64_t out = 0;
  EXPECT_FALSE(cache.Lookup(1, AsBytes(out))) << "invalidated entry misses";

  // The refill reuses the slot and the live subscription: zero far ops.
  // (Expected word = 5: the value the refilling read would have observed.)
  const uint64_t far_before = reader.stats().far_ops;
  uint64_t v2 = 200;
  cache.Admit(1, AsConstBytes(v2), 64, kWordSize, 5);
  EXPECT_EQ(reader.stats().far_ops, far_before) << "no subscribe round trip";
  EXPECT_EQ(cache.stats().refills, 1u);
  EXPECT_EQ(cache.stats().admissions, 1u) << "refill is not a new admission";
  EXPECT_TRUE(cache.Lookup(1, AsBytes(out)));
  EXPECT_EQ(out, 200u);
  // And coherence still works after the refill (same subscription).
  ASSERT_TRUE(writer.WriteWord(64, 6).ok());
  reader.DispatchNotifications();
  EXPECT_FALSE(cache.Lookup(1, AsBytes(out)));
}

TEST(NearCacheTest, RacedAdmissionEntersInvalid) {
  // A write that lands between the caller's validated read and the
  // subscribe registration publishes to nobody. The read-and-arm snapshot
  // must catch it: the entry is admitted invalid instead of pinning the
  // pre-write value forever (regression: admission used to subscribe after
  // the read with no re-validation).
  TestEnv env;
  auto& reader = env.NewClient();
  auto& writer = env.NewClient();
  NearCache cache(&reader, CacheOpts(1 << 20));
  // The racing write: the watched word is 7 by the time the subscribe
  // arms, but the admitting caller read it as 0.
  ASSERT_TRUE(writer.WriteWord(64, 7).ok());
  uint64_t stale = 100;
  cache.Admit(1, AsConstBytes(stale), 64, kWordSize, /*expected=*/0);
  EXPECT_EQ(cache.entries(), 1u) << "the subscription is live";
  EXPECT_EQ(cache.stats().admissions, 1u);
  EXPECT_EQ(cache.stats().raced_admits, 1u);
  uint64_t out = 0;
  EXPECT_FALSE(cache.Lookup(1, AsBytes(out)))
      << "the raced payload must never be served";
  // The next miss refills under the now-active subscription and is
  // trustworthy.
  uint64_t fresh = 200;
  cache.Admit(1, AsConstBytes(fresh), 64, kWordSize, 7);
  EXPECT_EQ(cache.stats().refills, 1u);
  EXPECT_TRUE(cache.Lookup(1, AsBytes(out)));
  EXPECT_EQ(out, 200u);
  // And coherence works from here on.
  ASSERT_TRUE(writer.WriteWord(64, 8).ok());
  reader.DispatchNotifications();
  EXPECT_FALSE(cache.Lookup(1, AsBytes(out)));
}

TEST(NearCacheTest, RefillWithMovedWatchRewatches) {
  // A key whose watched range moved (an HtTree split migrated it to a new
  // table; the old one was retired and freed) must not keep the old
  // subscription across the refill — it would watch dead memory and never
  // see another relevant write (regression: the refill path used to ignore
  // the watch argument entirely).
  TestEnv env;
  auto& reader = env.NewClient();
  auto& writer = env.NewClient();
  NearCache cache(&reader, CacheOpts(1 << 20));
  uint64_t v = 100;
  cache.Admit(1, AsConstBytes(v), /*watch=*/64, kWordSize, 0);
  ASSERT_TRUE(writer.WriteWord(64, 5).ok());
  EXPECT_EQ(reader.DispatchNotifications(), 1u);

  // Refill at a NEW watch (the key's bucket moved to address 128).
  uint64_t v2 = 200;
  cache.Admit(1, AsConstBytes(v2), /*watch=*/128, kWordSize, 0);
  EXPECT_EQ(cache.stats().rewatches, 1u);
  EXPECT_EQ(cache.stats().admissions, 1u) << "a rewatch is not a new entry";
  uint64_t out = 0;
  EXPECT_TRUE(cache.Lookup(1, AsBytes(out)));
  EXPECT_EQ(out, 200u);

  // Writes to the RETIRED range are noise now: no event, no invalidation.
  ASSERT_TRUE(writer.WriteWord(64, 6).ok());
  EXPECT_EQ(reader.DispatchNotifications(), 0u);
  EXPECT_TRUE(cache.Lookup(1, AsBytes(out))) << "old-range write is moot";

  // Writes to the NEW range must invalidate — this is the bug the rewatch
  // fixes: before, this write was never seen and the hit stayed stale.
  ASSERT_TRUE(writer.WriteWord(128, 9).ok());
  EXPECT_EQ(reader.DispatchNotifications(), 1u);
  EXPECT_FALSE(cache.Lookup(1, AsBytes(out)))
      << "cross-handle write to the new bucket must kill the entry";
}

TEST(NearCacheTest, LossWarningInvalidatesEverything) {
  TestEnv env;
  ClientOptions tiny;
  tiny.channel_capacity = 2;
  FarClient reader(&env.fabric(), /*client_id=*/77, tiny);
  auto& writer = env.NewClient();
  NearCache cache(&reader, CacheOpts(1 << 20));
  uint64_t v = 1;
  cache.Admit(1, AsConstBytes(v), 64, kWordSize, 0);
  cache.Admit(2, AsConstBytes(v), 128, kWordSize, 0);
  // Flood the two watched words past the channel capacity: some events are
  // dropped, so the channel reports a loss warning and the cache must
  // assume the worst about every entry.
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(writer.WriteWord(64, i).ok());
    ASSERT_TRUE(writer.WriteWord(128, i).ok());
  }
  reader.DispatchNotifications();
  EXPECT_GE(cache.stats().loss_resets, 1u);
  uint64_t out = 0;
  EXPECT_FALSE(cache.Lookup(1, AsBytes(out)));
  EXPECT_FALSE(cache.Lookup(2, AsBytes(out)));
}

TEST(NearCacheTest, DisabledCacheChargesNothing) {
  TestEnv env;
  auto& client = env.NewClient();
  NearCache cache(&client, CacheOpts(/*budget=*/0));
  EXPECT_FALSE(cache.enabled());
  const ClientStats before = client.stats();
  uint64_t out = 0;
  uint64_t v = 9;
  EXPECT_FALSE(cache.Lookup(1, AsBytes(out)));
  cache.Admit(1, AsConstBytes(v), 64, kWordSize, 0);
  EXPECT_EQ(cache.entries(), 0u);
  const ClientStats delta = client.stats().Delta(before);
  EXPECT_EQ(delta.near_ops, 0u) << "disabled probes are free";
  EXPECT_EQ(delta.far_ops, 0u);
  EXPECT_EQ(delta.cache_misses, 0u);
}

TEST(NearCacheTest, LookupChargesOneNearAccessHitOrMiss) {
  TestEnv env;
  auto& client = env.NewClient();
  NearCache cache(&client, CacheOpts(1 << 20));
  uint64_t v = 5, out = 0;
  cache.Admit(1, AsConstBytes(v), 64, kWordSize, 0);
  ClientStats before = client.stats();
  EXPECT_TRUE(cache.Lookup(1, AsBytes(out)));
  ClientStats delta = client.stats().Delta(before);
  EXPECT_EQ(delta.near_ops, 1u);
  EXPECT_EQ(delta.far_ops, 0u) << "a hit is the entire cost of the probe";
  EXPECT_EQ(delta.cache_hits, 1u);
  before = client.stats();
  EXPECT_FALSE(cache.Lookup(999, AsBytes(out)));
  delta = client.stats().Delta(before);
  EXPECT_EQ(delta.near_ops, 1u);
  EXPECT_EQ(delta.cache_misses, 1u);
}

// --------------------------------------------------------- CacheCoherence

HtTree::Options CachedTables(uint64_t buckets = 1024, uint32_t depth = 0,
                             uint64_t budget = 1 << 20) {
  HtTree::Options options;
  options.buckets_per_table = buckets;
  options.initial_depth = depth;
  options.cache.budget_bytes = budget;
  options.cache.admit_after = 1;
  return options;
}

TEST(CacheCoherenceTest, RepeatGetCostsZeroFarAccesses) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  auto map = HtTree::Create(&client, &env.alloc(), CachedTables());
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->Put(5, 55).ok());
  EXPECT_EQ(*map->Get(5), 55u);  // miss + admit
  const uint64_t before = client.stats().far_ops;
  EXPECT_EQ(*map->Get(5), 55u);
  EXPECT_EQ(client.stats().far_ops - before, 0u)
      << "a cache hit must not touch far memory at all";
  EXPECT_GE(map->near_cache()->stats().hits, 1u);
}

TEST(CacheCoherenceTest, ReadYourWritesThroughOwnCache) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  auto map = HtTree::Create(&client, &env.alloc(), CachedTables());
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->Put(5, 55).ok());
  EXPECT_EQ(*map->Get(5), 55u);  // now cached
  ASSERT_TRUE(map->Put(5, 56).ok());
  EXPECT_EQ(*map->Get(5), 56u) << "the writer's own cache entry was killed";
  ASSERT_TRUE(map->Remove(5).ok());
  EXPECT_EQ(map->Get(5).status().code(), StatusCode::kNotFound)
      << "a cached value must not shadow a removal";
}

TEST(CacheCoherenceTest, CrossHandleInvalidationViaNotification) {
  TestEnv env(BigFabric());
  auto& writer_client = env.NewClient();
  auto& reader_client = env.NewClient();
  auto writer = HtTree::Create(&writer_client, &env.alloc(), CachedTables());
  ASSERT_TRUE(writer.ok());
  auto reader = HtTree::Attach(&reader_client, &env.alloc(), writer->header(),
                               CachedTables());
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(writer->Put(5, 55).ok());
  EXPECT_EQ(*reader->Get(5), 55u);  // reader caches the value
  EXPECT_EQ(*reader->Get(5), 55u);  // and hits on it
  ASSERT_TRUE(writer->Put(5, 66).ok());
  EXPECT_EQ(*reader->Get(5), 66u)
      << "the writer's bucket CAS must invalidate the reader's entry";
  EXPECT_GE(reader->near_cache()->stats().invalidations, 1u);
  ASSERT_TRUE(writer->Remove(5).ok());
  EXPECT_EQ(reader->Get(5).status().code(), StatusCode::kNotFound);
}

TEST(CacheCoherenceTest, SplitInvalidatesRetiredBuckets) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  auto map = HtTree::Create(&client, &env.alloc(),
                            CachedTables(/*buckets=*/64, /*depth=*/0));
  ASSERT_TRUE(map.ok());
  for (uint64_t k = 1; k <= 100; ++k) {
    ASSERT_TRUE(map->Put(k, k * 10).ok());
  }
  for (uint64_t k = 1; k <= 100; ++k) {
    EXPECT_EQ(*map->Get(k), k * 10);  // populate the cache
  }
  ASSERT_TRUE(map->SplitTableOf(1).ok());  // retires every bucket it held
  for (uint64_t k = 1; k <= 100; ++k) {
    EXPECT_EQ(*map->Get(k), k * 10) << "key " << k << " after split";
  }
  EXPECT_GT(map->near_cache()->stats().invalidations, 0u)
      << "retired-bucket CASes must reach the cache";
  // The post-split refills moved every key's bucket to a new table, so the
  // cache must have rewatched — a refill that kept its retired-bucket
  // subscription would be blind to every write below.
  EXPECT_GT(map->near_cache()->stats().rewatches, 0u)
      << "post-split refills must move their subscriptions";

  // Regression for exactly that blindness: a SECOND handle now writes the
  // keys through the post-split table. Its bucket CASes land in the new
  // buckets; the first handle's cache only hears about them if its
  // subscriptions followed the migration.
  auto& writer_client = env.NewClient();
  auto writer = HtTree::Attach(&writer_client, &env.alloc(), map->header(),
                               CachedTables(/*buckets=*/64, /*depth=*/0));
  ASSERT_TRUE(writer.ok());
  for (uint64_t k = 1; k <= 100; ++k) {
    ASSERT_TRUE(writer->Put(k, k * 1000).ok());
  }
  for (uint64_t k = 1; k <= 100; ++k) {
    EXPECT_EQ(*map->Get(k), k * 1000)
        << "key " << k << ": cross-handle write after the split must be "
        << "seen — a stale hit means the entry still watches the old table";
  }
}

TEST(CacheCoherenceTest, MultiGetServesHitsWithoutFarOps) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  auto map = HtTree::Create(&client, &env.alloc(), CachedTables());
  ASSERT_TRUE(map.ok());
  std::vector<uint64_t> keys;
  for (uint64_t k = 1; k <= 32; ++k) {
    ASSERT_TRUE(map->Put(k, k + 1000).ok());
    keys.push_back(k);
  }
  auto first = map->MultiGet(keys);  // misses, admits
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(first[i].ok());
    EXPECT_EQ(*first[i], keys[i] + 1000);
  }
  const uint64_t before = client.stats().far_ops;
  auto second = map->MultiGet(keys);
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(second[i].ok());
    EXPECT_EQ(*second[i], keys[i] + 1000);
  }
  EXPECT_EQ(client.stats().far_ops - before, 0u)
      << "an all-hit batch needs no wave at all";
}

TEST(CacheCoherenceTest, ShardedMapPerShardCaches) {
  TestEnv env(SmallFabric(/*nodes=*/2, /*capacity=*/64ull << 20));
  auto& client = env.NewClient();
  ShardedMap::Options options;
  options.num_shards = 4;
  options.shard.buckets_per_table = 256;
  options.shard.cache.budget_bytes = 64 << 10;
  options.shard.cache.admit_after = 1;
  auto map = ShardedMap::Create(&client, &env.alloc(), options);
  ASSERT_TRUE(map.ok());
  for (uint64_t k = 1; k <= 200; ++k) {
    ASSERT_TRUE(map->Put(k, k * 7).ok());
  }
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t k = 1; k <= 200; ++k) {
      EXPECT_EQ(*map->Get(k), k * 7);
    }
  }
  const NearCacheStats stats = map->near_cache_stats();
  EXPECT_GE(stats.hits, 200u) << "second pass should hit per-shard caches";
  EXPECT_GT(map->near_cache_bytes(), 0u);
  // Writes keep the per-shard caches coherent.
  for (uint64_t k = 1; k <= 200; ++k) {
    ASSERT_TRUE(map->Put(k, k * 9).ok());
    EXPECT_EQ(*map->Get(k), k * 9);
  }
}

TEST(CacheCoherenceTest, BlobChunkCacheHitsAndStaysCoherent) {
  TestEnv env(BigFabric());
  auto& client = env.NewClient();
  auto store = HtBlobStore::Create(&client, &env.alloc());
  ASSERT_TRUE(store.ok());
  store->EnableChunkCache(CacheOpts(1 << 20));
  const std::string small = "hello far memory";
  std::span<const std::byte> bytes(
      reinterpret_cast<const std::byte*>(small.data()), small.size());
  ASSERT_TRUE(store->Put(1, bytes).ok());

  auto first = store->Get(1);
  ASSERT_TRUE(first.ok());
  const uint64_t far_first = client.stats().far_ops;
  auto second = store->Get(1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, *first);
  EXPECT_GE(store->chunk_cache()->stats().hits, 1u);
  EXPECT_LT(client.stats().far_ops - far_first,
            far_first == 0 ? 1 : far_first)
      << "the chunk hit must drop at least the blob-read far access";

  // An overwrite allocates a fresh blob and rewrites the map entry; the
  // next Get must see the new bytes, not the cached chunk of the old blob.
  const std::string updated = "a different value";
  std::span<const std::byte> updated_bytes(
      reinterpret_cast<const std::byte*>(updated.data()), updated.size());
  ASSERT_TRUE(store->Put(1, updated_bytes).ok());
  auto third = store->Get(1);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(third->data()),
                        third->size()),
            updated);

  // MultiGet shares the same chunk cache.
  for (uint64_t k = 2; k <= 4; ++k) {
    ASSERT_TRUE(store->Put(k, bytes).ok());
  }
  const std::vector<uint64_t> keys{1, 2, 3, 4};
  auto batch1 = store->MultiGet(keys);
  const uint64_t hits_before = store->chunk_cache()->stats().hits;
  auto batch2 = store->MultiGet(keys);
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(batch1[i].ok());
    ASSERT_TRUE(batch2[i].ok());
    EXPECT_EQ(*batch1[i], *batch2[i]);
  }
  EXPECT_GE(store->chunk_cache()->stats().hits, hits_before + keys.size());
}

// Randomized equivalence: a cache-on map, a cache-off map, and a local
// shadow must agree on every operation's outcome — over puts, overwrites,
// gets, removes, and forced splits. This is the "caching changes costs,
// never semantics" property.
TEST(CacheCoherenceTest, CacheOnOffEquivalenceUnderRandomOps) {
  TestEnv env(BigFabric());
  auto& cached_client = env.NewClient();
  auto& plain_client = env.NewClient();
  auto cached = HtTree::Create(&cached_client, &env.alloc(),
                               CachedTables(/*buckets=*/64, /*depth=*/0,
                                            /*budget=*/8 << 10));
  ASSERT_TRUE(cached.ok());
  HtTree::Options plain_options;
  plain_options.buckets_per_table = 64;
  auto plain = HtTree::Create(&plain_client, &env.alloc(), plain_options);
  ASSERT_TRUE(plain.ok());
  std::map<uint64_t, uint64_t> shadow;

  Rng rng(20260806);
  for (int op = 0; op < 4000; ++op) {
    const uint64_t key = rng.NextInRange(1, 48);
    const double dice = rng.NextDouble();
    if (dice < 0.50) {
      auto got_cached = cached->Get(key);
      auto got_plain = plain->Get(key);
      auto it = shadow.find(key);
      if (it == shadow.end()) {
        EXPECT_EQ(got_cached.status().code(), StatusCode::kNotFound)
            << "op " << op << " key " << key;
        EXPECT_EQ(got_plain.status().code(), StatusCode::kNotFound);
      } else {
        ASSERT_TRUE(got_cached.ok()) << "op " << op << " key " << key;
        ASSERT_TRUE(got_plain.ok());
        EXPECT_EQ(*got_cached, it->second) << "op " << op << " key " << key;
        EXPECT_EQ(*got_plain, it->second);
      }
    } else if (dice < 0.85) {
      const uint64_t value = rng.Next() | 1;  // never the 0 sentinel
      ASSERT_TRUE(cached->Put(key, value).ok());
      ASSERT_TRUE(plain->Put(key, value).ok());
      shadow[key] = value;
    } else if (dice < 0.97) {
      const Status rc = cached->Remove(key);
      const Status rp = plain->Remove(key);
      EXPECT_EQ(rc.code(), rp.code()) << "op " << op << " key " << key;
      shadow.erase(key);
    } else {
      ASSERT_TRUE(cached->SplitTableOf(key).ok());
    }
  }
  // Full final sweep, both point and batched reads.
  std::vector<uint64_t> keys;
  for (uint64_t k = 1; k <= 48; ++k) {
    keys.push_back(k);
  }
  auto batch = cached->MultiGet(keys);
  for (uint64_t k = 1; k <= 48; ++k) {
    auto it = shadow.find(k);
    if (it == shadow.end()) {
      EXPECT_EQ(cached->Get(k).status().code(), StatusCode::kNotFound);
      EXPECT_EQ(batch[k - 1].status().code(), StatusCode::kNotFound);
    } else {
      EXPECT_EQ(*cached->Get(k), it->second);
      ASSERT_TRUE(batch[k - 1].ok());
      EXPECT_EQ(*batch[k - 1], it->second);
    }
  }
}

// Writer and cached reader race on one key. Under the default Reliable
// policy hits are linearizable: with a single writer storing a strictly
// increasing sequence, the reader must observe a non-decreasing sequence
// of legal values. Run under TSan by scripts/check.sh.
TEST(CacheCoherenceTest, ConcurrentWriterReaderInvalidationRace) {
  TestEnv env(BigFabric());
  auto& writer_client = env.NewClient();
  auto& reader_client = env.NewClient();
  auto writer = HtTree::Create(&writer_client, &env.alloc(), CachedTables());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Put(1, 100).ok());
  const FarAddr header = writer->header();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::thread reader([&] {
    auto handle =
        HtTree::Attach(&reader_client, &env.alloc(), header, CachedTables());
    ASSERT_TRUE(handle.ok());
    uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto value = handle->Get(1);
      ASSERT_TRUE(value.ok());
      ASSERT_GE(*value, 100u);
      ASSERT_LE(*value, 1100u);
      ASSERT_GE(*value, last) << "stale read after a newer one";
      last = *value;
      reads.fetch_add(1, std::memory_order_relaxed);
    }
    // Convergence: after the writer finished, one dispatch-and-read must
    // surface the final value.
    EXPECT_EQ(*handle->Get(1), 1100u);
    EXPECT_GT(handle->near_cache()->stats().hits +
                  handle->near_cache()->stats().misses,
              0u);
  });
  // Gate on the reader's first read: under a sanitizer the reader's
  // Attach can otherwise lose the whole race to the writer loop and the
  // reads>0 assertion below turns into a flake.
  while (reads.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  for (uint64_t v = 101; v <= 1100; ++v) {
    ASSERT_TRUE(writer->Put(1, v).ok());
  }
  stop.store(true);
  reader.join();
  EXPECT_GT(reads.load(), 0u);
}

}  // namespace
}  // namespace fmds
