# Empty compiler generated dependencies file for fmds_fabric.
# This may be replaced when dependencies are built.
