# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/notification_test[1]_include.cmake")
include("/root/repo/build/tests/alloc_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_test[1]_include.cmake")
include("/root/repo/build/tests/core_simple_test[1]_include.cmake")
include("/root/repo/build/tests/ht_tree_test[1]_include.cmake")
include("/root/repo/build/tests/far_queue_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/refreshable_test[1]_include.cmake")
include("/root/repo/build/tests/monitoring_test[1]_include.cmake")
include("/root/repo/build/tests/perfmodel_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/cached_vector_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_edge_test[1]_include.cmake")
include("/root/repo/build/tests/blob_store_test[1]_include.cmake")
include("/root/repo/build/tests/async_client_test[1]_include.cmake")
