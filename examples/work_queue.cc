// §5.3 in action: a multi-producer/multi-consumer far-memory work queue
// where the fast path is ONE far access per operation (faai/saai), compared
// live against the two-access ticket queue and the lock-based queue.
#include <cstdio>
#include <thread>
#include <vector>

#include "src/baselines/simple_queues.h"
#include "src/core/far_queue.h"

int main() {
  using namespace fmds;

  Fabric fabric(FabricOptions{});
  FarAllocator alloc(&fabric);

  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr uint64_t kItemsPerProducer = 5000;
  constexpr uint64_t kTotal = kProducers * kItemsPerProducer;

  FarClient creator(&fabric, 0);
  FarQueue::Options options;
  options.capacity = 512;
  options.max_clients = kProducers + kConsumers;
  auto queue = FarQueue::Create(&creator, &alloc, options);

  std::vector<std::unique_ptr<FarClient>> clients;
  for (int i = 0; i < kProducers + kConsumers; ++i) {
    clients.push_back(std::make_unique<FarClient>(&fabric, i + 1));
  }

  std::atomic<uint64_t> consumed{0};
  std::atomic<uint64_t> checksum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      auto handle = FarQueue::Attach(clients[p].get(), queue->header());
      for (uint64_t i = 0; i < kItemsPerProducer; ++i) {
        const uint64_t item = p * kItemsPerProducer + i + 1;
        while (!handle->Enqueue(item).ok()) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      auto handle =
          FarQueue::Attach(clients[kProducers + c].get(), queue->header());
      while (consumed.load() < kTotal) {
        auto item = handle->Dequeue();
        if (item.ok()) {
          checksum.fetch_add(*item);
          consumed.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  const uint64_t expected = kTotal * (kTotal + 1) / 2;
  std::printf("consumed %llu items, checksum %s\n",
              static_cast<unsigned long long>(consumed.load()),
              checksum.load() == expected ? "OK" : "MISMATCH");

  uint64_t fast = 0;
  uint64_t slow = 0;
  uint64_t far_ops = 0;
  for (auto& client : clients) {
    far_ops += client->stats().far_ops;
    slow += client->stats().slow_path_ops;
  }
  fast = 2 * kTotal;  // one enqueue + one dequeue per item
  std::printf("far-memory queue: %.3f far accesses/op "
              "(%llu ops, %llu far ops, %llu slow-path entries)\n",
              static_cast<double>(far_ops) / static_cast<double>(fast),
              static_cast<unsigned long long>(fast),
              static_cast<unsigned long long>(far_ops),
              static_cast<unsigned long long>(slow));

  // Single-threaded cost comparison against the baselines.
  FarClient bench(&fabric, 99);
  auto ticket = TicketFarQueue::Create(&bench, &alloc, 1024);
  auto before = bench.stats();
  for (int i = 1; i <= 1000; ++i) {
    (void)ticket->Enqueue(i);
    (void)ticket->Dequeue();
  }
  auto delta = bench.stats().Delta(before);
  std::printf("ticket queue (plain FAA): %.3f far accesses/op\n",
              static_cast<double>(delta.far_ops) / 2000.0);

  auto locked = LockFarQueue::Create(&bench, &alloc, 1024);
  before = bench.stats();
  for (int i = 1; i <= 1000; ++i) {
    (void)locked->Enqueue(i);
    (void)locked->Dequeue();
  }
  delta = bench.stats().Delta(before);
  std::printf("lock-based queue:        %.3f far accesses/op\n",
              static_cast<double>(delta.far_ops) / 2000.0);
  return 0;
}
