// Quickstart: stand up a simulated far-memory fabric, use the Figure 1
// primitives directly, then the far-memory data structures built on them.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/alloc/far_allocator.h"
#include "src/common/bytes.h"
#include "src/core/far_counter.h"
#include "src/core/far_queue.h"
#include "src/core/ht_tree.h"
#include "src/fabric/fabric.h"
#include "src/fabric/far_client.h"

int main() {
  using namespace fmds;

  // 1. A fabric: 4 memory nodes x 64 MB, one flat far address space.
  FabricOptions options;
  options.num_nodes = 4;
  options.node_capacity = 64ull << 20;
  Fabric fabric(options);
  FarAllocator alloc(&fabric);
  FarClient client(&fabric, /*client_id=*/1);

  // 2. Raw one-sided verbs + indirect addressing (Fig. 1).
  FarAddr cell = *alloc.Allocate(kWordSize);
  FarAddr target = *alloc.Allocate(kWordSize);
  (void)client.WriteWord(target, 42);
  (void)client.WriteWord(cell, target);  // cell points at target
  uint64_t value = 0;
  (void)client.Load0(cell, AsBytes(value));  // one far access: *(*cell)
  std::printf("load0 through a far pointer -> %llu (one round trip)\n",
              static_cast<unsigned long long>(value));

  // 3. A far-memory counter (§5.1).
  auto counter = FarCounter::Create(client, alloc, 0);
  (void)counter->Add(client, 7);
  std::printf("counter = %llu\n",
              static_cast<unsigned long long>(*counter->Get(client)));

  // 4. The HT-tree map (§5.2): 1 far access per lookup, 2 per store.
  HtTree::Options map_options;
  map_options.buckets_per_table = 4096;  // low load factor: no chains
  auto map = HtTree::Create(&client, &alloc, map_options);
  for (uint64_t k = 1; k <= 1000; ++k) {
    (void)map->Put(k, k * k);
  }
  const uint64_t ops_before = client.stats().far_ops;
  uint64_t squared = *map->Get(321);
  std::printf("map[321] = %llu in %llu far access(es)\n",
              static_cast<unsigned long long>(squared),
              static_cast<unsigned long long>(client.stats().far_ops -
                                              ops_before));

  // 5. The far-memory queue (§5.3): 1 far access per op via faai/saai.
  auto queue = FarQueue::Create(&client, &alloc);
  (void)queue->Enqueue(ops_before);
  std::printf("queue round trip -> %llu\n",
              static_cast<unsigned long long>(*queue->Dequeue()));

  // 6. The async pipeline: independent ops share one doorbell round trip.
  std::vector<uint64_t> keys{11, 222, 333, 444, 555, 666, 777, 888};
  const uint64_t batch_ops_before = client.stats().far_ops;
  const uint64_t batch_t0 = client.clock().now_ns();
  auto values = map->MultiGet(keys);  // all probes ride one flush
  std::printf("MultiGet(%zu keys) -> %llu waited round trip(s), %.1f us "
              "(vs ~%zu round trips sync)\n",
              keys.size(),
              static_cast<unsigned long long>(client.stats().far_ops -
                                              batch_ops_before),
              static_cast<double>(client.clock().now_ns() - batch_t0) /
                  1000.0,
              keys.size());
  (void)values;
  // The same machinery is available raw: Post*()s, then Flush()/WaitAll().
  client.PostWriteWord(cell, 1);
  client.PostWriteWord(target, 2);
  (void)client.WaitAll();

  // 7. The metric that matters (§3.1): far accesses, not wall time.
  std::printf("\nclient totals: %s\n", client.stats().ToString().c_str());
  std::printf("simulated time: %.1f us\n",
              static_cast<double>(client.clock().now_ns()) / 1000.0);
  return 0;
}
