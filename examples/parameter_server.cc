// §5.4's motivating workload: a parameter-server-style iterative learner.
// A trainer updates a far-memory model vector; workers read parameters from
// refreshable local mirrors with bounded staleness. As training converges
// and updates slow, the kAuto refresh policy shifts from version polling to
// notifications — watch the per-round far traffic collapse.
#include <cmath>
#include <cstdio>

#include "src/common/rng.h"
#include "src/core/refreshable_vector.h"

int main() {
  using namespace fmds;

  Fabric fabric(FabricOptions{});
  FarAllocator alloc(&fabric);
  FarClient trainer(&fabric, 1);
  FarClient worker(&fabric, 2);

  RefreshableVector::Options options;
  options.size = 4096;       // model parameters
  options.group_size = 64;   // per-group version words
  auto model_w = RefreshableVector::Create(&trainer, &alloc, options);
  auto model_r = RefreshableVector::Attach(&worker, model_w->header());
  (void)model_r->EnableReader(RefreshableVector::RefreshMode::kAuto);

  std::printf("%-6s %-10s %-14s %-12s %-8s\n", "round", "updates",
              "groups_pulled", "far_ops", "policy");
  Rng rng(7);
  uint64_t prev_groups = 0;
  for (int round = 0; round < 16; ++round) {
    // SGD-style decay: update count halves as the model converges.
    const int updates = static_cast<int>(2048.0 / std::pow(2.0, round));
    for (int i = 0; i < updates; ++i) {
      (void)model_w->UpdateScatter(rng.NextBelow(options.size),
                                   round * 1000 + i);
    }
    const uint64_t ops_before = worker.stats().far_ops;
    (void)model_r->Refresh();
    const auto& stats = model_r->refresh_stats();
    std::printf("%-6d %-10d %-14llu %-12llu %-8s\n", round, updates,
                static_cast<unsigned long long>(stats.groups_refreshed -
                                                prev_groups),
                static_cast<unsigned long long>(worker.stats().far_ops -
                                                ops_before),
                stats.notify_active ? "notify" : "poll");
    prev_groups = stats.groups_refreshed;
  }
  std::printf("\nmode switches: %llu, loss fallbacks: %llu\n",
              static_cast<unsigned long long>(
                  model_r->refresh_stats().mode_switches),
              static_cast<unsigned long long>(
                  model_r->refresh_stats().loss_fallbacks));
  // Bounded staleness demonstration: after a final Refresh, the worker's
  // mirror reflects every completed update.
  (void)model_w->UpdateScatter(0, 424242);
  (void)model_r->Refresh();
  std::printf("param[0] after final refresh: %llu (expected 424242)\n",
              static_cast<unsigned long long>(*model_r->Get(0)));
  return 0;
}
