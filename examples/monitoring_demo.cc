// §6 case study end-to-end: a producer samples CPU utilization into a
// far-memory histogram (one far access per sample, via add2 through the
// current-window pointer); consumers with different alarm thresholds react
// to notifications only — normal samples cause zero consumer traffic.
#include <cstdio>

#include "src/apps/monitoring/monitoring.h"
#include "src/common/rng.h"

int main() {
  using namespace fmds;

  Fabric fabric(FabricOptions{});
  FarAllocator alloc(&fabric);
  FarClient producer_client(&fabric, 1);
  FarClient ops_team(&fabric, 2);       // warnings and up
  FarClient pager_duty(&fabric, 3);     // failures only

  MonitorConfig config;
  config.num_bins = 100;           // 1% CPU per bin
  config.min_value = 0.0;
  config.max_value = 100.0;
  config.num_windows = 4;          // 4 sliding windows
  config.warn_bin = 80;
  config.critical_bin = 90;
  config.failure_bin = 98;
  config.alarm_duration = 3;       // 3 exceedances within a window

  auto store = MonitorStore::Create(&producer_client, &alloc, config);
  MetricProducer producer(&*store, &producer_client);
  MetricConsumer ops(&*store, &ops_team, AlarmSeverity::kWarning);
  MetricConsumer pager(&*store, &pager_duty, AlarmSeverity::kFailure);
  (void)ops.Subscribe();
  (void)pager.Subscribe();

  // Simulate a day: mostly-normal load with an incident in window 2.
  Rng rng(2024);
  const char* phases[] = {"calm", "busy", "incident", "recovered"};
  for (int window = 0; window < 4; ++window) {
    for (int i = 0; i < 500; ++i) {
      double cpu;
      switch (window) {
        case 0:
          cpu = 20.0 + rng.NextDouble() * 30.0;  // calm
          break;
        case 1:
          cpu = 50.0 + rng.NextDouble() * 35.0;  // busy, some warnings
          break;
        case 2:
          cpu = 85.0 + rng.NextDouble() * 15.0;  // incident
          break;
        default:
          cpu = 25.0 + rng.NextDouble() * 25.0;  // recovered
      }
      (void)producer.Record(cpu);
    }
    auto ops_alarms = ops.Poll();
    auto pager_alarms = pager.Poll();
    std::printf("window %d (%-9s): ops alarms=%zu pager alarms=%zu\n",
                window, phases[window], ops_alarms->size(),
                pager_alarms->size());
    for (const Alarm& alarm : *ops_alarms) {
      const char* severity =
          alarm.severity == AlarmSeverity::kFailure    ? "FAILURE"
          : alarm.severity == AlarmSeverity::kCritical ? "CRITICAL"
                                                       : "warning";
      std::printf("   [%s] bin %llu reached count %llu\n", severity,
                  static_cast<unsigned long long>(alarm.bin),
                  static_cast<unsigned long long>(alarm.count));
    }
    (void)producer.RotateWindow();
  }

  std::printf("\nfar-memory traffic (the §6 claim):\n");
  std::printf("  producer:   %llu far ops for 2000 samples (1 per sample)\n",
              static_cast<unsigned long long>(
                  producer_client.stats().far_ops));
  std::printf("  ops team:   %llu notifications, %llu far ops\n",
              static_cast<unsigned long long>(ops_team.stats().notifications),
              static_cast<unsigned long long>(ops_team.stats().far_ops));
  std::printf("  pager duty: %llu notifications, %llu far ops\n",
              static_cast<unsigned long long>(
                  pager_duty.stats().notifications),
              static_cast<unsigned long long>(pager_duty.stats().far_ops));
  std::printf("  (naive sample-shipping would be (k+1)*N = %d transfers)\n",
              3 * 2000);
  return 0;
}
