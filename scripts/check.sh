#!/usr/bin/env bash
# Repo check: normal build + full test suite, then ThreadSanitizer and
# AddressSanitizer builds running the concurrency-sensitive suites
# (fabric, async pipeline, notifications, sharded fan-out). Run from the
# repo root:
#
#   scripts/check.sh
#
# Env:
#   JOBS       parallel build jobs (default: nproc)
#   SKIP_TSAN  set to 1 to skip the ThreadSanitizer pass
#   SKIP_ASAN  set to 1 to skip the AddressSanitizer pass
#   SKIP_UBSAN set to 1 to skip the UndefinedBehaviorSanitizer pass
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

SANITIZER_TARGETS=(fabric_test fabric_edge_test async_client_test
  notification_test sharded_map_test obs_test cache_test txn_test
  txn_serializability_test write_behind_test far_queue_test
  windowed_test telemetry_test route_test route_equivalence_test
  congestion_test admission_test far_map_test)
SANITIZER_FILTER='Fabric|AsyncClient|Notif|ShardedMap|Obs|Trace|OpLabel|NearCache|ClockRing|Cache|Txn|Serializ|WriteBehind|FarQueueWatch|Telemetry|Windowed|Snapshotter|GaugeGroup|Ewma|LogHistogramWindow|RecorderWindowed|Route|RpcPath|ServiceQueue|Congestion|Admission|FarMap|MapOptions'

echo "==> normal build"
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"

echo "==> full test suite"
ctest --test-dir build --output-on-failure

if [[ "${SKIP_TSAN:-0}" == "1" ]]; then
  echo "==> TSan pass skipped (SKIP_TSAN=1)"
else
  echo "==> TSan build"
  cmake -B build-tsan -S . -DFMDS_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" --target "${SANITIZER_TARGETS[@]}"

  echo "==> TSan: fabric + async + notification + sharding tests"
  ctest --test-dir build-tsan --output-on-failure -R "${SANITIZER_FILTER}"
fi

if [[ "${SKIP_ASAN:-0}" == "1" ]]; then
  echo "==> ASan pass skipped (SKIP_ASAN=1)"
else
  echo "==> ASan build"
  cmake -B build-asan -S . -DFMDS_SANITIZE=address >/dev/null
  cmake --build build-asan -j "${JOBS}" --target "${SANITIZER_TARGETS[@]}"

  echo "==> ASan: fabric + async + notification + sharding tests"
  ctest --test-dir build-asan --output-on-failure -R "${SANITIZER_FILTER}"
fi

if [[ "${SKIP_UBSAN:-0}" == "1" ]]; then
  echo "==> UBSan pass skipped (SKIP_UBSAN=1)"
else
  echo "==> UBSan build"
  cmake -B build-ubsan -S . -DFMDS_SANITIZE=undefined >/dev/null
  cmake --build build-ubsan -j "${JOBS}" --target "${SANITIZER_TARGETS[@]}"

  echo "==> UBSan: fabric + async + notification + sharding + obs tests"
  ctest --test-dir build-ubsan --output-on-failure -R "${SANITIZER_FILTER}"
fi

echo "==> all checks passed"
