#!/usr/bin/env bash
# Repo check: normal build + full test suite, then a ThreadSanitizer build
# running the concurrency-sensitive suites (fabric, async pipeline,
# notifications). Run from the repo root:
#
#   scripts/check.sh
#
# Env:
#   JOBS       parallel build jobs (default: nproc)
#   SKIP_TSAN  set to 1 to skip the sanitizer pass
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

echo "==> normal build"
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"

echo "==> full test suite"
ctest --test-dir build --output-on-failure

if [[ "${SKIP_TSAN:-0}" == "1" ]]; then
  echo "==> TSan pass skipped (SKIP_TSAN=1)"
  exit 0
fi

echo "==> TSan build"
cmake -B build-tsan -S . -DFMDS_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}" --target \
  fabric_test fabric_edge_test async_client_test notification_test

echo "==> TSan: fabric + async + notification tests"
ctest --test-dir build-tsan --output-on-failure \
  -R 'Fabric|AsyncClient|Notif'

echo "==> all checks passed"
